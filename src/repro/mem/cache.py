"""Set-associative cache with true LRU replacement.

The cache stores :class:`~repro.mem.cacheline.CacheLine` objects keyed by
line address.  It is deliberately policy-free: eviction *victim selection*
happens here, but what to do with the victim (log-record flushing, persist
ordering, metadata propagation) is decided by the caller through the value
returned from :meth:`SetAssocCache.insert`.

Each set is an ``OrderedDict`` from line address to line; the MRU entry
sits at the end.  Lookups re-order; fills evict the LRU entry when the set
is full.

Perf note: the geometry (latency, ways, set count/mask) is precomputed at
construction instead of re-deriving it from the config on every access,
and set selection is a shift-and-mask when the set count is a power of
two.  :meth:`iter_matching` / :meth:`iter_lines` are the non-allocating
scan paths used by fence/drain loops; :meth:`lines_matching` keeps the
historical list-returning contract.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator, List, Optional

from repro.common import units
from repro.common.config import CacheConfig
from repro.common.errors import SimulationError
from repro.mem.cacheline import CacheLine

_LINE_SHIFT = units.LINE_BYTES.bit_length() - 1  # 64 -> 6


class SetAssocCache:
    """A single cache level."""

    __slots__ = (
        "name",
        "config",
        "latency",
        "ways",
        "num_sets",
        "_index_mask",
        "_sets",
        "_set_memo",
    )

    def __init__(self, name: str, config: CacheConfig) -> None:
        self.name = name
        self.config = config
        self.latency = config.latency_cycles
        self.ways = config.ways
        num_sets = config.num_sets
        self.num_sets = num_sets
        # Power-of-two set counts (every shipped config) take the mask
        # fast path; anything else falls back to modulo.
        self._index_mask = num_sets - 1 if num_sets & (num_sets - 1) == 0 else None
        self._sets: List["OrderedDict[int, CacheLine]"] = [
            OrderedDict() for _ in range(num_sets)
        ]
        # line_addr -> set memo: the address→set mapping is a pure static
        # function of the geometry, so it is computed once per distinct
        # line address and never invalidated (clear() drops lines, not
        # sets).  Bounded by the distinct working-set line count.
        self._set_memo: "dict[int, OrderedDict[int, CacheLine]]" = {}

    # --- geometry -----------------------------------------------------

    def set_index(self, line_addr: int) -> int:
        if self._index_mask is not None:
            return (line_addr >> _LINE_SHIFT) & self._index_mask
        return (line_addr >> _LINE_SHIFT) % self.num_sets

    def _set_for(self, line_addr: int) -> "OrderedDict[int, CacheLine]":
        cache_set = self._set_memo.get(line_addr)
        if cache_set is None:
            cache_set = self._sets[self.set_index(line_addr)]
            self._set_memo[line_addr] = cache_set
        return cache_set

    # --- lookup ---------------------------------------------------------

    def lookup(self, line_addr: int, *, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line for *line_addr*, or None on a miss.

        ``touch=True`` promotes the line to MRU (the normal access path);
        metadata-only scans pass ``touch=False`` to avoid perturbing LRU.
        """
        cache_set = self._set_memo.get(line_addr)
        if cache_set is None:
            mask = self._index_mask
            if mask is not None:
                cache_set = self._sets[(line_addr >> _LINE_SHIFT) & mask]
            else:
                cache_set = self._sets[
                    (line_addr >> _LINE_SHIFT) % self.num_sets
                ]
            self._set_memo[line_addr] = cache_set
        line = cache_set.get(line_addr)
        if line is not None and touch:
            cache_set.move_to_end(line_addr)
        return line

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._set_for(line_addr)

    # --- fill / evict -----------------------------------------------------

    def insert(self, line: CacheLine) -> Optional[CacheLine]:
        """Install *line*; return the evicted LRU victim, if any.

        The victim is removed from the cache before being returned, so the
        caller can write it back / propagate metadata without re-entrancy
        hazards.
        """
        cache_set = self._set_for(line.addr)
        if line.addr in cache_set:
            raise SimulationError(
                f"{self.name}: double insert of line {line.addr:#x}"
            )
        victim: Optional[CacheLine] = None
        if len(cache_set) >= self.ways:
            _, victim = cache_set.popitem(last=False)
        cache_set[line.addr] = line
        return victim

    def remove(self, line_addr: int) -> Optional[CacheLine]:
        """Remove and return the line, or None if absent."""
        return self._set_for(line_addr).pop(line_addr, None)

    def pick_victim(self, line_addr: int) -> Optional[CacheLine]:
        """Return (without removing) the line that :meth:`insert` would
        evict when filling the set of *line_addr*; None if there is room."""
        cache_set = self._set_for(line_addr)
        if len(cache_set) < self.ways:
            return None
        return next(iter(cache_set.values()))

    # --- scans ---------------------------------------------------------

    def __iter__(self) -> Iterator[CacheLine]:
        for cache_set in self._sets:
            yield from cache_set.values()

    def iter_lines(self) -> Iterator[CacheLine]:
        """Non-allocating scan of every resident line (no LRU effect).

        Callers must not insert/remove lines while iterating; mutating a
        *line's* fields is fine.
        """
        for cache_set in self._sets:
            yield from cache_set.values()

    def iter_matching(
        self, predicate: Callable[[CacheLine], bool]
    ) -> Iterator[CacheLine]:
        """Lazily yield resident lines satisfying *predicate* (no LRU
        effect, no intermediate list).  Same no-structural-mutation rule
        as :meth:`iter_lines`; use :meth:`lines_matching` when the loop
        body inserts or evicts."""
        for cache_set in self._sets:
            for line in cache_set.values():
                if predicate(line):
                    yield line

    def lines_matching(self, predicate: Callable[[CacheLine], bool]) -> List[CacheLine]:
        """Return all resident lines satisfying *predicate* (no LRU effect)."""
        return [line for line in self.iter_lines() if predicate(line)]

    def resident_count(self) -> int:
        return sum(len(s) for s in self._sets)

    def clear(self) -> None:
        """Drop every line (used for crash simulation: caches are volatile)."""
        for cache_set in self._sets:
            cache_set.clear()
