"""Byte-accurate encoding of the durable log region.

The simulator keeps the durable log in two equivalent forms: the
*structural* list on :class:`~repro.mem.pm.PersistentMemory` (fast to
query, pruned on commit) and a *serialized* stream of words written into
the PM log region at :data:`~repro.mem.layout.PM_LOG_BASE`.  The
serialized form is what a real controller would see after a crash: this
module defines the codec, and recovery can re-derive every entry purely
from PM words (``repro.recovery.engine.recover(..., from_bytes=True)``),
proving the byte stream alone carries the recovery protocol.

Entry wire format (64-bit words):

* header word — ``kind`` (4 bits) | ``nwords`` (8 bits, <<4) |
  ``tx_seq`` (52 bits, <<12);
* for undo/redo records: one address word, then ``nwords`` payload words;
* commit/abort markers are a bare header word;
* a zero word terminates the stream (kind 0 is invalid).

The stream is append-only.  Entries are never erased — markers make
stale records inert: recovery ignores any record whose transaction has a
commit *or abort* marker (aborted transactions were already rolled back
by the kernel-space replay of Section V-B).
"""

from __future__ import annotations

from typing import Callable, List

from repro.common import units
from repro.common.errors import SimulationError
from repro.mem.pm import DurableLogEntry

#: Wire tags (0 is the terminator and therefore invalid).
KIND_TAGS = {"undo": 1, "redo": 2, "commit": 3, "abort": 4}
TAG_KINDS = {tag: kind for kind, tag in KIND_TAGS.items()}

#: Entry kinds that carry an address and payload.
PAYLOAD_KINDS = ("undo", "redo")

_SEQ_LIMIT = 1 << 52
_WORD_MASK = (1 << 64) - 1


def encode_entry(entry: DurableLogEntry) -> List[int]:
    """Serialize one entry into its wire words."""
    kind = entry.kind if entry.kind != "commit" else "commit"
    try:
        tag = KIND_TAGS[kind]
    except KeyError:
        raise SimulationError(f"unencodable log entry kind {entry.kind!r}") from None
    if not 0 <= entry.tx_seq < _SEQ_LIMIT:
        raise SimulationError(f"tx_seq {entry.tx_seq} exceeds the 52-bit field")
    nwords = len(entry.words)
    if nwords > 8:
        raise SimulationError("records cover at most a cache line (8 words)")
    header = tag | (nwords << 4) | (entry.tx_seq << 12)
    if kind in PAYLOAD_KINDS:
        return [header, entry.addr] + [w & _WORD_MASK for w in entry.words]
    return [header]


def decode_stream(
    read_word: Callable[[int], int], base: int, limit: int
) -> List[DurableLogEntry]:
    """Parse entries from PM words starting at *base* until a zero
    header or *limit* is reached."""
    out: List[DurableLogEntry] = []
    cursor = base
    while cursor < limit:
        header = read_word(cursor)
        if header == 0:
            break
        tag = header & 0xF
        kind = TAG_KINDS.get(tag)
        if kind is None:
            raise SimulationError(
                f"corrupt log header {header:#x} at {cursor:#x}"
            )
        nwords = (header >> 4) & 0xFF
        tx_seq = header >> 12
        cursor += units.WORD_BYTES
        if kind in PAYLOAD_KINDS:
            addr = read_word(cursor)
            cursor += units.WORD_BYTES
            words = []
            for _ in range(nwords):
                words.append(read_word(cursor))
                cursor += units.WORD_BYTES
            out.append(
                DurableLogEntry(kind=kind, tx_seq=tx_seq, addr=addr, words=tuple(words))
            )
        else:
            out.append(DurableLogEntry(kind=kind, tx_seq=tx_seq))
    return out


def entry_wire_words(entry: DurableLogEntry) -> int:
    """Number of words the entry occupies on the wire."""
    if entry.kind in PAYLOAD_KINDS:
        return 2 + len(entry.words)
    return 1
