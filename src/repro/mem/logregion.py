"""Byte-accurate encoding of the durable log region.

The simulator keeps the durable log in two equivalent forms: the
*structural* list on :class:`~repro.mem.pm.PersistentMemory` (fast to
query, pruned on commit) and a *serialized* stream of words written into
the PM log region at :data:`~repro.mem.layout.PM_LOG_BASE`.  The
serialized form is what a real controller would see after a crash: this
module defines the codec, and recovery can re-derive every entry purely
from PM words (``repro.recovery.engine.recover(..., from_bytes=True)``),
proving the byte stream alone carries the recovery protocol.

Stream wire format, version 1 (64-bit words):

* stream header — :data:`LOG_MAGIC` word, then a version word; entries
  follow immediately after;
* entry header word — ``kind`` (4 bits) | ``nwords`` (8 bits, <<4) |
  ``tx_seq`` (52 bits, <<12);
* for payload records (undo/redo, plus the 2PC ``prepare`` and
  ``decide-commit``/``decide-abort`` records): one address word, then
  ``nwords`` payload words;
* every entry ends with a checksum word: CRC-32 of the entry's preceding
  wire words, folded into 64 bits (low half the CRC, high half its
  complement — never zero, so a checksum can not mimic the terminator);
* a zero word terminates the stream (kind 0 is invalid).

The legacy version-0 stream (no header, no checksums) is still decoded:
a stream whose first word is not :data:`LOG_MAGIC` is parsed as v0, so
old durable images keep recovering.

The stream is append-only.  Entries are never erased — markers make
stale records inert: recovery ignores any record whose transaction has a
commit *or abort* marker (aborted transactions were already rolled back
by the kernel-space replay of Section V-B).

Tags 5–8 carry the cross-shard two-phase-commit protocol state
(:mod:`repro.shard.twopc`): ``prepare`` stages one key/value write of a
global transaction on a participant (addr = key, payload = value
words), the ``prepared`` marker seals a participant's prepare phase,
and ``decide-commit``/``decide-abort`` persist the coordinator's (or a
participant's) durable decision (addr = deciding node id, payload =
participant shard ids).  They ride the same CRC-checked framing as
undo/redo records, so torn/bit-flipped decision records are detected by
the tolerant decoder exactly like data records; local replay treats
them as inert and recovery surfaces them for in-doubt resolution.

Because real PM controllers guarantee only 8-byte write atomicity, a
crash can cut the final append at any word boundary.  The *tolerant*
decoder (:func:`decode_stream_tolerant`) therefore never raises on
damaged media: it classifies each entry as valid, corrupt (checksum or
framing mismatch mid-stream) or torn (an incomplete tail with nothing
valid after it) and leaves the policy decision — refuse or salvage — to
:mod:`repro.recovery.engine`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.common import units
from repro.common.errors import LogParseError, SimulationError
from repro.mem.pm import DurableLogEntry

#: Wire tags (0 is the terminator and therefore invalid).  Tags 5–8 are
#: the cross-shard 2PC protocol records (see the module docstring).
KIND_TAGS = {
    "undo": 1,
    "redo": 2,
    "commit": 3,
    "abort": 4,
    "prepare": 5,
    "prepared": 6,
    "decide-commit": 7,
    "decide-abort": 8,
}
TAG_KINDS = {tag: kind for kind, tag in KIND_TAGS.items()}

#: Entry kinds that carry an address and payload.
PAYLOAD_KINDS = ("undo", "redo", "prepare", "decide-commit", "decide-abort")

#: The 2PC protocol record kinds: inert to local replay, collected by
#: recovery for cross-shard in-doubt resolution.
TWOPC_KINDS = ("prepare", "prepared", "decide-commit", "decide-abort")

#: The durable decision markers among :data:`TWOPC_KINDS`.
DECISION_KINDS = ("decide-commit", "decide-abort")

#: First word of a versioned stream ("SLPMTLOG", little-endian).  The
#: low nibble (0x53 & 0xF = 3) is irrelevant: version detection matches
#: the whole word, never the tag field.
LOG_MAGIC = int.from_bytes(b"SLPMTLOG", "little")

#: Current stream format version.
LOG_VERSION = 1

#: Words occupied by the v1 stream header (magic + version).
HEADER_WORDS = 2

_SEQ_LIMIT = 1 << 52
_WORD_MASK = (1 << 64) - 1


def entry_checksum(words: List[int]) -> int:
    """CRC-32 of the wire words, folded into a non-zero 64-bit word.

    The low half carries the CRC, the high half its bitwise complement:
    the two halves can never both be zero, so a checksum word is always
    distinguishable from the stream terminator.
    """
    crc = zlib.crc32(b"".join(w.to_bytes(8, "little") for w in words))
    return crc | ((crc ^ 0xFFFF_FFFF) << 32)


def encode_entry(entry: DurableLogEntry, *, version: int = LOG_VERSION) -> List[int]:
    """Serialize one entry into its wire words (checksummed for v1)."""
    try:
        tag = KIND_TAGS[entry.kind]
    except KeyError:
        raise SimulationError(f"unencodable log entry kind {entry.kind!r}") from None
    if not 0 <= entry.tx_seq < _SEQ_LIMIT:
        raise SimulationError(f"tx_seq {entry.tx_seq} exceeds the 52-bit field")
    nwords = len(entry.words)
    if nwords > 8:
        raise SimulationError("records cover at most a cache line (8 words)")
    header = tag | (nwords << 4) | (entry.tx_seq << 12)
    if entry.kind in PAYLOAD_KINDS:
        words = [header, entry.addr] + [w & _WORD_MASK for w in entry.words]
    else:
        words = [header]
    if version >= 1:
        words.append(entry_checksum(words))
    return words


def entry_wire_words(entry: DurableLogEntry, *, version: int = LOG_VERSION) -> int:
    """Number of words the entry occupies on the wire."""
    body = 2 + len(entry.words) if entry.kind in PAYLOAD_KINDS else 1
    return body + (1 if version >= 1 else 0)


def stream_header_words() -> List[int]:
    """The two words opening a v1 serialized stream."""
    return [LOG_MAGIC, LOG_VERSION]


def detect_version(first_word: int) -> int:
    """Stream version from the word at the log base (v0 has no header)."""
    return LOG_VERSION if first_word == LOG_MAGIC else 0


# ----------------------------------------------------------------------
# damage classification (tolerant decoding)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DamagedEntry:
    """One undecodable or untrustworthy wire entry.

    ``offset`` is the PM word address of the entry's header word;
    ``reason`` is ``"torn"`` (incomplete tail), ``"checksum"`` (payload
    words fail their CRC), ``"header"`` (invalid kind tag) or
    ``"nwords"`` (absurd payload length).  ``kind``/``tx_seq`` are
    best-effort guesses from the (possibly damaged) header word.
    """

    offset: int
    reason: str
    kind: Optional[str] = None
    tx_seq: Optional[int] = None
    words: Tuple[int, ...] = ()

    def __str__(self) -> str:
        who = f" ({self.kind} tx_seq={self.tx_seq})" if self.kind else ""
        return f"{self.reason} entry at {self.offset:#x}{who}"


@dataclass
class ParsedLog:
    """Outcome of a tolerant parse of the serialized log region."""

    version: int
    entries: List[DurableLogEntry] = field(default_factory=list)
    damaged: List[DamagedEntry] = field(default_factory=list)
    torn_tail: Optional[DamagedEntry] = None

    @property
    def clean(self) -> bool:
        return not self.damaged and self.torn_tail is None


# ----------------------------------------------------------------------
# strict decoding
# ----------------------------------------------------------------------


def decode_stream(
    read_word: Callable[[int], int],
    base: int,
    limit: int,
    *,
    version: int = LOG_VERSION,
) -> List[DurableLogEntry]:
    """Parse entries from PM words starting at *base* (which must point
    at the first entry, past any stream header) until a zero header or
    *limit* is reached.  Raises :class:`LogParseError` on any framing or
    checksum damage — the strict, trust-the-media path."""
    parsed = decode_stream_tolerant(read_word, base, limit, version=version)
    if parsed.torn_tail is not None:
        raise LogParseError(
            f"torn log tail ({parsed.torn_tail.reason})",
            offset=parsed.torn_tail.offset,
        )
    if parsed.damaged:
        first = parsed.damaged[0]
        raise LogParseError(
            f"corrupt log entry ({first.reason})", offset=first.offset
        )
    return parsed.entries


def decode_stream_tolerant(
    read_word: Callable[[int], int],
    base: int,
    limit: int,
    *,
    version: int = LOG_VERSION,
) -> ParsedLog:
    """Parse as much of the stream as the media supports, never raising.

    Damage handling:

    * an entry whose header carries an unknown kind tag or an absurd
      ``nwords`` destroys framing — it is recorded and parsing stops
      (everything after it is unreachable, exactly like real media);
    * a v1 entry whose checksum word mismatches is recorded as
      ``"checksum"`` damage and *skipped* (its claimed extent is known,
      so framing survives) — unless nothing but zeros follows, in which
      case it is the torn tail of the final in-flight append;
    * a header claiming words past *limit* is a torn tail.
    """
    out = ParsedLog(version=version)
    cursor = base
    while cursor < limit:
        header = read_word(cursor)
        if header == 0:
            break
        tag = header & 0xF
        kind = TAG_KINDS.get(tag)
        nwords = (header >> 4) & 0xFF
        tx_seq = header >> 12
        if kind is None:
            out.damaged.append(
                DamagedEntry(offset=cursor, reason="header", words=(header,))
            )
            break
        if kind in PAYLOAD_KINDS and not 1 <= nwords <= 8:
            out.damaged.append(
                DamagedEntry(
                    offset=cursor, reason="nwords", kind=kind, tx_seq=tx_seq,
                    words=(header,),
                )
            )
            break
        body = 2 + nwords if kind in PAYLOAD_KINDS else 1
        total = body + (1 if version >= 1 else 0)
        end = cursor + total * units.WORD_BYTES
        if end > limit:
            out.torn_tail = DamagedEntry(
                offset=cursor, reason="torn", kind=kind, tx_seq=tx_seq,
                words=(header,),
            )
            break
        wire = [
            read_word(cursor + i * units.WORD_BYTES) for i in range(total)
        ]
        if version >= 1 and wire[-1] != entry_checksum(wire[:-1]):
            damage = DamagedEntry(
                offset=cursor,
                reason="torn" if _only_zeros(read_word, end, limit) else "checksum",
                kind=kind,
                tx_seq=tx_seq,
                words=tuple(wire),
            )
            if damage.reason == "torn":
                out.torn_tail = damage
                break
            out.damaged.append(damage)
            cursor = end
            continue
        if kind in PAYLOAD_KINDS:
            out.entries.append(
                DurableLogEntry(
                    kind=kind, tx_seq=tx_seq, addr=wire[1],
                    words=tuple(wire[2 : 2 + nwords]),
                )
            )
        else:
            out.entries.append(DurableLogEntry(kind=kind, tx_seq=tx_seq))
        cursor = end
    return out


def _only_zeros(read_word: Callable[[int], int], start: int, limit: int) -> bool:
    """True when nothing non-zero lies in ``[start, limit)`` — i.e. the
    damaged entry is the last thing the media ever received."""
    cursor = start
    while cursor < limit:
        if read_word(cursor) != 0:
            return False
        cursor += units.WORD_BYTES
    return True
