"""Physical address-space layout of the simulated machine.

The lower region is volatile (DRAM-backed), the upper region is persistent
memory.  Workloads allocate durable objects from the persistent region via
:mod:`repro.alloc`; anything below :data:`PM_BASE` is ordinary volatile
data and never participates in logging or persist ordering.
"""

from __future__ import annotations

#: First byte of the persistent region.
PM_BASE = 0x1000_0000

#: First byte of the persistent *log* area (grows upward, disjoint from
#: the persistent heap, which starts at :data:`PM_HEAP_BASE`).
PM_LOG_BASE = PM_BASE

#: Size reserved for the log area.
PM_LOG_BYTES = 0x0100_0000  # 16 MiB

#: First byte of the persistent heap handed to the allocator.
PM_HEAP_BASE = PM_LOG_BASE + PM_LOG_BYTES


def is_persistent(addr: int) -> bool:
    """Return True when *addr* lies in the persistent region."""
    return addr >= PM_BASE


def is_volatile(addr: int) -> bool:
    """Return True when *addr* lies in the volatile (DRAM) region."""
    return 0 <= addr < PM_BASE
