"""Persistent-memory backing store and the durable log region.

The backing store maps word addresses to values; untouched memory reads
as zero.  Because durability is granted at WPQ insertion (ADR), callers
apply writes here the moment the WPQ accepts them — the store therefore
always holds exactly the post-crash contents of the media plus the
drained queue.

The log region is modelled structurally rather than byte-by-byte: durable
log entries (undo or redo records, plus transaction framing) are kept as
an append-only list.  Byte/line accounting for the log's *traffic* is
done by the log buffer and machine, which know the packed record sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common import units
from repro.common.errors import SimulationError
from repro.mem import layout


@dataclass(frozen=True)
class DurableLogEntry:
    """One durable record in the PM log region.

    ``kind`` is ``"undo"`` (old words), ``"redo"`` (new words),
    ``"commit"`` (transaction end marker), or ``"abort"`` (the
    transaction was rolled back in place by the Section V-B kernel
    replay — its remaining records are inert).  ``tx_seq`` is the global
    transaction sequence number that owns the record; ``addr`` is the
    word-aligned base of the payload.
    """

    kind: str
    tx_seq: int
    addr: int = 0
    words: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("undo", "redo", "commit", "abort"):
            raise SimulationError(f"unknown log entry kind {self.kind!r}")


@dataclass
class PersistentMemory:
    """Durable word store + the log region in two equivalent forms.

    ``log`` is the structural list (pruned after commit/abort); the same
    entries are also *serialized* as words into the PM log region at
    :data:`~repro.mem.layout.PM_LOG_BASE` (append-only, markers make
    stale records inert), so recovery can run from raw bytes — see
    :mod:`repro.mem.logregion`.
    """

    _words: Dict[int, int] = field(default_factory=dict)
    log: List[DurableLogEntry] = field(default_factory=list)
    _log_cursor: int = layout.PM_LOG_BASE

    # --- data region ------------------------------------------------------

    def read_word(self, addr: int) -> int:
        if not layout.is_persistent(addr):
            raise SimulationError(f"PM read of volatile address {addr:#x}")
        return self._words.get(units.word_addr(addr), 0)

    def write_word(self, addr: int, value: int) -> None:
        if not layout.is_persistent(addr):
            raise SimulationError(f"PM write of volatile address {addr:#x}")
        self._words[units.word_addr(addr)] = value

    def read_line(self, line_addr: int) -> List[int]:
        base = units.line_addr(line_addr)
        return [
            self._words.get(base + i * units.WORD_BYTES, 0)
            for i in range(units.WORDS_PER_LINE)
        ]

    def write_line(self, line_addr: int, words: List[int]) -> None:
        base = units.line_addr(line_addr)
        if len(words) != units.WORDS_PER_LINE:
            raise SimulationError("write_line expects a full line of words")
        for i, value in enumerate(words):
            self._words[base + i * units.WORD_BYTES] = value

    # --- log region -----------------------------------------------------

    def log_append(self, entry: DurableLogEntry) -> None:
        self.log.append(entry)
        self._serialize(entry)

    def _serialize(self, entry: DurableLogEntry) -> None:
        from repro.mem import logregion  # local import: avoids a cycle

        words = logregion.encode_entry(entry)
        end = self._log_cursor + len(words) * units.WORD_BYTES
        if end > layout.PM_LOG_BASE + layout.PM_LOG_BYTES:
            raise SimulationError("PM log region exhausted")
        for i, word in enumerate(words):
            self._words[self._log_cursor + i * units.WORD_BYTES] = word
        self._log_cursor = end

    def parse_byte_log(self) -> List[DurableLogEntry]:
        """Re-derive every entry from the serialized PM words (what a
        controller sees post-crash).  Includes entries the structural
        list already pruned; markers keep them inert."""
        from repro.mem import logregion

        return logregion.decode_stream(
            lambda addr: self._words.get(addr, 0),
            layout.PM_LOG_BASE,
            layout.PM_LOG_BASE + layout.PM_LOG_BYTES,
        )

    def log_discard_tx(self, tx_seq: int) -> None:
        """Reclaim the (now useless) records of a committed transaction."""
        self.log = [e for e in self.log if e.tx_seq != tx_seq]

    def log_entries_for(self, tx_seq: int) -> List[DurableLogEntry]:
        return [e for e in self.log if e.tx_seq == tx_seq]

    def committed_tx_seqs(self) -> "set[int]":
        return {e.tx_seq for e in self.log if e.kind == "commit"}

    @staticmethod
    def resolved_tx_seqs(entries: List[DurableLogEntry]) -> "set[int]":
        """Transactions whose records are inert: committed or already
        rolled back by an in-place abort (both leave markers)."""
        return {e.tx_seq for e in entries if e.kind in ("commit", "abort")}

    # --- introspection -------------------------------------------------

    def snapshot(self) -> "PersistentMemory":
        """Deep copy for before/after comparisons in tests."""
        return PersistentMemory(
            _words=dict(self._words),
            log=list(self.log),
            _log_cursor=self._log_cursor,
        )

    def words_equal(self, other: "PersistentMemory", addrs: "List[int]") -> bool:
        return all(self.read_word(a) == other.read_word(a) for a in addrs)
