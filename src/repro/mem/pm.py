"""Persistent-memory backing store and the durable log region.

The backing store maps word addresses to values; untouched memory reads
as zero.  Because durability is granted at WPQ insertion (ADR), callers
apply writes here the moment the WPQ accepts them — the store therefore
always holds exactly the post-crash contents of the media plus the
drained queue.

The log region is kept in two equivalent forms: the *structural*
append-only list of :class:`DurableLogEntry` (fast to query, pruned on
commit) and the *serialized* word stream the codec in
:mod:`repro.mem.logregion` defines (versioned header, per-entry CRC).
Byte/line accounting for the log's *traffic* is done by the log buffer
and machine, which know the packed record sizes.

Media faults are injected *through this class* so both forms stay
consistent: a :class:`repro.faults.model.FaultModel` attached to
:attr:`fault_model` can tear the in-flight append at a word boundary,
flip bits in serialized entries, or (via the write journal armed with
:meth:`arm_journal`) revert the last N durability groups, modelling WPQ
drains that never reached media.  Every injection updates the structural
list and the damage ledger (:attr:`log_damage`) to mirror exactly what
the serialized stream now carries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common import units
from repro.common.errors import SimulationError
from repro.mem import layout

_logregion = None


def _logregion_module():
    """Cached :mod:`repro.mem.logregion` (imported lazily: the codec
    module imports :class:`DurableLogEntry` from here)."""
    global _logregion
    if _logregion is None:
        from repro.mem import logregion

        _logregion = logregion
    return _logregion


@dataclass(frozen=True)
class DurableLogEntry:
    """One durable record in the PM log region.

    ``kind`` is ``"undo"`` (old words), ``"redo"`` (new words),
    ``"commit"`` (transaction end marker), or ``"abort"`` (the
    transaction was rolled back in place by the Section V-B kernel
    replay — its remaining records are inert).  The cross-shard 2PC
    protocol (:mod:`repro.shard.twopc`) adds ``"prepare"`` (a staged
    write of a global transaction: addr = key, words = value),
    ``"prepared"`` (marker sealing a participant's prepare phase) and
    ``"decide-commit"``/``"decide-abort"`` (a durable decision: addr =
    deciding node id, words = participant shard ids).  ``tx_seq`` is
    the global transaction sequence number that owns the record;
    ``addr`` is the word-aligned base of the payload (or the key/node
    id for protocol records).
    """

    kind: str
    tx_seq: int
    addr: int = 0
    words: Tuple[int, ...] = ()

    _KINDS = (
        "undo",
        "redo",
        "commit",
        "abort",
        "prepare",
        "prepared",
        "decide-commit",
        "decide-abort",
    )

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise SimulationError(f"unknown log entry kind {self.kind!r}")


@dataclass
class LogExtent:
    """Where one serialized entry lives on the media."""

    start: int
    nwords: int
    entry: DurableLogEntry

    @property
    def end(self) -> int:
        return self.start + self.nwords * units.WORD_BYTES


@dataclass
class _JournalGroup:
    """Durable writes between two durability events (one WPQ insert)."""

    cursor0: int
    writes: List[Tuple[int, Optional[int]]] = field(default_factory=list)
    appends: int = 0


@dataclass
class PersistentMemory:
    """Durable word store + the log region in two equivalent forms.

    ``log`` is the structural list (pruned after commit/abort); the same
    entries are also *serialized* as words into the PM log region at
    :data:`~repro.mem.layout.PM_LOG_BASE` (append-only, markers make
    stale records inert), so recovery can run from raw bytes — see
    :mod:`repro.mem.logregion`.
    """

    _words: Dict[int, int] = field(default_factory=dict)
    log: List[DurableLogEntry] = field(default_factory=list)
    _log_cursor: int = layout.PM_LOG_BASE
    #: Serialized placement of every appended entry, in append order.
    log_extents: List[LogExtent] = field(default_factory=list)
    #: Structural ledger of injected media damage, mirroring what the
    #: serialized stream's checksums would reveal (see module docstring).
    log_damage: List["object"] = field(default_factory=list)
    #: Optional media fault injector (:mod:`repro.faults.model`).
    fault_model: Optional["object"] = None
    #: Total :meth:`log_append` calls, the fault model's append clock.
    log_appends: int = 0
    #: Write journal for drop-drain faults; None when disarmed.
    _journal: Optional[List[_JournalGroup]] = None

    # --- data region ------------------------------------------------------

    def read_word(self, addr: int) -> int:
        if not layout.is_persistent(addr):
            raise SimulationError(f"PM read of volatile address {addr:#x}")
        return self._words.get(units.word_addr(addr), 0)

    def write_word(self, addr: int, value: int) -> None:
        if not layout.is_persistent(addr):
            raise SimulationError(f"PM write of volatile address {addr:#x}")
        self._raw_store(units.word_addr(addr), value)

    def read_line(self, line_addr: int) -> List[int]:
        base = units.line_addr(line_addr)
        return [
            self._words.get(base + i * units.WORD_BYTES, 0)
            for i in range(units.WORDS_PER_LINE)
        ]

    def write_line(self, line_addr: int, words: List[int]) -> None:
        base = units.line_addr(line_addr)
        if len(words) != units.WORDS_PER_LINE:
            raise SimulationError("write_line expects a full line of words")
        if self._journal is None:
            store = self._words
            for i, value in enumerate(words):
                store[base + i * units.WORD_BYTES] = value
            return
        for i, value in enumerate(words):
            self._raw_store(base + i * units.WORD_BYTES, value)

    def _raw_store(self, word_addr: int, value: int) -> None:
        """Apply one durable word write, journaling the prior value."""
        if self._journal is not None:
            self._journal[-1].writes.append(
                (word_addr, self._words.get(word_addr))
            )
        self._words[word_addr] = value

    # --- log region -----------------------------------------------------

    def log_append(self, entry: DurableLogEntry) -> None:
        index = self.log_appends
        self.log_appends = index + 1
        if self.fault_model is not None and self.fault_model.on_append(
            self, entry, index
        ):
            return
        self.append_clean(entry)

    def append_clean(self, entry: DurableLogEntry) -> None:
        """The undamaged append path: structural list + serialization."""
        self.log.append(entry)
        self._serialize(entry)
        if self._journal is not None:
            self._journal[-1].appends += 1

    def _serialize(self, entry: DurableLogEntry) -> None:
        logregion = _logregion_module()

        words = logregion.encode_entry(entry)
        start = self._next_entry_start()
        end = start + len(words) * units.WORD_BYTES
        if end > layout.PM_LOG_BASE + layout.PM_LOG_BYTES:
            raise SimulationError("PM log region exhausted")
        if self._journal is None:
            store = self._words
            for i, word in enumerate(words):
                store[start + i * units.WORD_BYTES] = word
        else:
            for i, word in enumerate(words):
                self._raw_store(start + i * units.WORD_BYTES, word)
        self._log_cursor = end
        self.log_extents.append(
            LogExtent(start=start, nwords=len(words), entry=entry)
        )

    def _next_entry_start(self) -> int:
        """Cursor for the next entry, writing the v1 stream header first
        if this is the very first append into a pristine region."""
        from repro.mem import logregion

        if self._log_cursor == layout.PM_LOG_BASE:
            for i, word in enumerate(logregion.stream_header_words()):
                self._raw_store(
                    layout.PM_LOG_BASE + i * units.WORD_BYTES, word
                )
            self._log_cursor = (
                layout.PM_LOG_BASE + logregion.HEADER_WORDS * units.WORD_BYTES
            )
        return self._log_cursor

    def _log_limit(self) -> int:
        """Upper parse bound: past everything ever written to the log
        region (hand-written legacy streams included), so the tolerant
        decoder's is-anything-after-this scan stays cheap."""
        end = layout.PM_LOG_BASE + layout.PM_LOG_BYTES
        top = max(
            (a for a in self._words if layout.PM_LOG_BASE <= a < end),
            default=None,
        )
        limit = self._log_cursor
        if top is not None:
            limit = max(limit, top + units.WORD_BYTES)
        return limit

    def serialized_log_version(self) -> int:
        """Stream version of the serialized region (v0 = legacy)."""
        from repro.mem import logregion

        return logregion.detect_version(
            self._words.get(layout.PM_LOG_BASE, 0)
        )

    def _parse_base(self, version: int) -> int:
        from repro.mem import logregion

        skip = logregion.HEADER_WORDS * units.WORD_BYTES if version >= 1 else 0
        return layout.PM_LOG_BASE + skip

    def parse_byte_log(self) -> List[DurableLogEntry]:
        """Re-derive every entry from the serialized PM words (what a
        controller sees post-crash).  Includes entries the structural
        list already pruned; markers keep them inert.  Strict: raises
        :class:`~repro.common.errors.LogParseError` on damaged media."""
        from repro.mem import logregion

        version = self.serialized_log_version()
        return logregion.decode_stream(
            lambda addr: self._words.get(addr, 0),
            self._parse_base(version),
            self._log_limit(),
            version=version,
        )

    def parse_byte_log_tolerant(self) -> "object":
        """Tolerant parse of the serialized region: never raises,
        classifies torn/corrupt entries (see
        :func:`repro.mem.logregion.decode_stream_tolerant`)."""
        from repro.mem import logregion

        version = self.serialized_log_version()
        return logregion.decode_stream_tolerant(
            lambda addr: self._words.get(addr, 0),
            self._parse_base(version),
            self._log_limit(),
            version=version,
        )

    def structural_parsed(self) -> "object":
        """The structural list presented as a parse result, including
        the damage ledger — the fast-path twin of
        :meth:`parse_byte_log_tolerant` for pristine-or-injected media."""
        from repro.mem import logregion

        parsed = logregion.ParsedLog(version=logregion.LOG_VERSION)
        parsed.entries = list(self.log)
        for damage in self.log_damage:
            if damage.reason == "torn" and parsed.torn_tail is None:
                parsed.torn_tail = damage
            else:
                parsed.damaged.append(damage)
        return parsed

    def log_reset(self) -> None:
        """Erase the whole log region (structural, serialized, damage).

        Recovery calls this once replay and application hooks succeeded:
        afterwards a second recovery is a no-op, which is what makes
        ``recover(); recover()`` ≡ ``recover()``.
        """
        end = layout.PM_LOG_BASE + layout.PM_LOG_BYTES
        for addr in [a for a in self._words if layout.PM_LOG_BASE <= a < end]:
            del self._words[addr]
        self.log.clear()
        self.log_extents.clear()
        self.log_damage.clear()
        self._log_cursor = layout.PM_LOG_BASE
        if self._journal is not None:
            self._journal = [_JournalGroup(cursor0=self._log_cursor)]

    def log_discard_tx(self, tx_seq: int) -> None:
        """Reclaim the (now useless) records of a committed transaction."""
        self.log = [e for e in self.log if e.tx_seq != tx_seq]

    def log_entries_for(self, tx_seq: int) -> List[DurableLogEntry]:
        return [e for e in self.log if e.tx_seq == tx_seq]

    def committed_tx_seqs(self) -> "set[int]":
        return {e.tx_seq for e in self.log if e.kind == "commit"}

    @staticmethod
    def resolved_tx_seqs(entries: List[DurableLogEntry]) -> "set[int]":
        """Transactions whose records are inert: committed or already
        rolled back by an in-place abort (both leave markers)."""
        return {e.tx_seq for e in entries if e.kind in ("commit", "abort")}

    # --- media fault injection (serialized + structural, in lockstep) ---

    def serialize_partial(self, entry: DurableLogEntry, cut_words: int) -> int:
        """Apply a torn append: only the first *cut_words* wire words of
        *entry* reach the media (8-byte-atomic controller, power cut
        mid-append).  The structural list never sees the entry; the
        damage ledger records the tear.  Returns the header offset."""
        from repro.mem import logregion

        words = logregion.encode_entry(entry)
        if not 0 <= cut_words <= len(words):
            raise SimulationError(
                f"tear cut {cut_words} outside the entry's {len(words)} words"
            )
        start = self._next_entry_start()
        for i in range(cut_words):
            self._raw_store(start + i * units.WORD_BYTES, words[i])
        self._log_cursor = start + cut_words * units.WORD_BYTES
        if 0 < cut_words < len(words):
            self.log_damage.append(
                logregion.DamagedEntry(
                    offset=start, reason="torn", kind=entry.kind,
                    tx_seq=entry.tx_seq,
                )
            )
        return start

    def flip_serialized_bit(self, append_index: int, word: int, bit: int) -> int:
        """Flip one bit of the *append_index*-th serialized entry.

        The structural twin is removed and the damage ledger updated, so
        both views agree the entry is untrustworthy — exactly what the
        byte stream's checksum will report.  Returns the flipped word's
        PM address."""
        from repro.mem import logregion

        extent = self.log_extents[append_index]
        if not 0 <= word < extent.nwords:
            raise SimulationError(
                f"flip word {word} outside extent of {extent.nwords} words"
            )
        addr = extent.start + word * units.WORD_BYTES
        self._raw_store(addr, self._words.get(addr, 0) ^ (1 << bit))
        for i in range(len(self.log) - 1, -1, -1):
            if self.log[i] is extent.entry:
                del self.log[i]
                break
        self.log_damage.append(
            logregion.DamagedEntry(
                offset=extent.start,
                reason="checksum",
                kind=extent.entry.kind,
                tx_seq=extent.entry.tx_seq,
            )
        )
        return addr

    # --- write journal (drop-drain faults) -------------------------------

    def arm_journal(self) -> None:
        """Start journaling durable writes, grouped by durability event,
        so a suffix of WPQ drains can later be reverted."""
        self._journal = [_JournalGroup(cursor0=self._log_cursor)]

    def note_durability_event(self) -> None:
        """Close the current journal group (one WPQ insertion happened)."""
        if self._journal is not None and (
            self._journal[-1].writes or self._journal[-1].appends
        ):
            self._journal.append(_JournalGroup(cursor0=self._log_cursor))

    def journal_groups(self) -> int:
        """Non-empty durability groups currently journaled."""
        if self._journal is None:
            return 0
        return sum(1 for g in self._journal if g.writes or g.appends)

    def drop_last_drains(self, count: int) -> int:
        """Revert the last *count* durability groups: those WPQ drains
        never reached media (an ADR/battery failure).  Both the word
        store and the structural log rewind together.  Returns how many
        groups were actually reverted."""
        if self._journal is None:
            raise SimulationError("journal not armed; call arm_journal() first")
        dropped = 0
        while dropped < count and self._journal:
            group = self._journal.pop()
            if not (group.writes or group.appends):
                continue
            for addr, prior in reversed(group.writes):
                if prior is None:
                    self._words.pop(addr, None)
                else:
                    self._words[addr] = prior
            for _ in range(group.appends):
                if self.log_extents:
                    extent = self.log_extents.pop()
                    for i in range(len(self.log) - 1, -1, -1):
                        if self.log[i] is extent.entry:
                            del self.log[i]
                            break
            self._log_cursor = group.cursor0
            dropped += 1
        if not self._journal:
            self._journal = [_JournalGroup(cursor0=self._log_cursor)]
        return dropped

    # --- introspection -------------------------------------------------

    def snapshot(self) -> "PersistentMemory":
        """Deep copy for before/after comparisons in tests."""
        return PersistentMemory(
            _words=dict(self._words),
            log=list(self.log),
            _log_cursor=self._log_cursor,
            log_extents=list(self.log_extents),
            log_damage=list(self.log_damage),
            log_appends=self.log_appends,
        )

    def words_equal(self, other: "PersistentMemory", addrs: "List[int]") -> bool:
        return all(self.read_word(a) == other.read_word(a) for a in addrs)
