"""Cache-line state, including the SLPMT metadata fields of Figure 5.

Each L1 line carries eight per-word log bits; each L2 line carries two
log bits (one per 32-byte half); L3 lines carry none.  All transactional
levels also carry a persist bit and a two-bit transaction ID, and every
level tracks a MESI coherence state plus a dirty flag.

Word values are stored per line in a fixed-length list indexed by word
number, filled from the backing memory on fetch, so that undo records can
capture pre-store values without a second memory access.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.common import units
from repro.common.errors import SimulationError


class Mesi(enum.Enum):
    """MESI coherence states (Table III: MESI protocol)."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass
class CacheLine:
    """One resident cache line with SLPMT metadata.

    ``log_bits`` length depends on the level: 8 in L1 (per word), 2 in L2
    (per 32-byte group), 0 in L3.  ``tx_id`` is ``None`` when the line was
    not written inside a transaction tracked for lazy persistency.
    """

    addr: int
    words: List[int]
    state: Mesi = Mesi.EXCLUSIVE
    dirty: bool = False
    persist: bool = False
    log_bits: List[bool] = field(default_factory=list)
    tx_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.addr % units.LINE_BYTES != 0:
            raise SimulationError(f"line address {self.addr:#x} not aligned")
        if len(self.words) != units.WORDS_PER_LINE:
            raise SimulationError(
                f"line must hold {units.WORDS_PER_LINE} words, got {len(self.words)}"
            )

    # --- word access ----------------------------------------------------

    def read_word(self, index: int) -> int:
        return self.words[index]

    def write_word(self, index: int, value: int) -> None:
        self.words[index] = value
        self.dirty = True
        self.state = Mesi.MODIFIED

    # --- SLPMT metadata ---------------------------------------------------

    def any_log_bit(self) -> bool:
        return any(self.log_bits)

    def all_log_bits(self) -> bool:
        return bool(self.log_bits) and all(self.log_bits)

    def clear_transactional_state(self) -> None:
        """Drop persist/log/tx metadata (used when a line leaves the
        transactional domain, e.g. on fill from L3)."""
        self.persist = False
        self.log_bits = [False] * len(self.log_bits)
        self.tx_id = None

    def is_lazy(self) -> bool:
        """A committed-lazy line: dirty, not scheduled for eager persist,
        and tagged with the transaction that produced it."""
        return self.dirty and not self.persist and self.tx_id is not None


def new_l1_line(addr: int, words: List[int]) -> CacheLine:
    """Create an L1 line with eight per-word log bits (Figure 5, top)."""
    return CacheLine(addr=addr, words=words, log_bits=[False] * units.WORDS_PER_LINE)


def new_l2_line(addr: int, words: List[int]) -> CacheLine:
    """Create an L2 line with two per-32-byte log bits (Figure 5, bottom)."""
    return CacheLine(addr=addr, words=words, log_bits=[False] * units.L2_LOG_BITS)


def new_l3_line(addr: int, words: List[int]) -> CacheLine:
    """Create an L3 line without SLPMT metadata."""
    return CacheLine(addr=addr, words=words, log_bits=[])


def aggregate_log_bits_l1_to_l2(l1_bits: List[bool]) -> List[bool]:
    """Fold eight L1 log bits into two L2 bits by logical conjunction.

    Per Section III-B1, one L2 bit covers four words; it is set only when
    *all four* corresponding L1 bits are set, so a later fetch never skips
    a log record that was not actually created (at the price of possible
    duplicate logging, which the speculative-logging optimisation reduces).
    """
    if len(l1_bits) != units.WORDS_PER_LINE:
        raise SimulationError(f"expected {units.WORDS_PER_LINE} L1 log bits")
    group = units.L1_BITS_PER_L2_BIT
    return [all(l1_bits[i * group : (i + 1) * group]) for i in range(units.L2_LOG_BITS)]


def replicate_log_bits_l2_to_l1(l2_bits: List[bool]) -> List[bool]:
    """Expand two L2 log bits back into eight L1 bits (Section III-B1)."""
    if len(l2_bits) != units.L2_LOG_BITS:
        raise SimulationError(f"expected {units.L2_LOG_BITS} L2 log bits")
    out: List[bool] = []
    for bit in l2_bits:
        out.extend([bit] * units.L1_BITS_PER_L2_BIT)
    return out
