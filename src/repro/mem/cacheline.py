"""Cache-line state, including the SLPMT metadata fields of Figure 5.

Each L1 line carries eight per-word log bits; each L2 line carries two
log bits (one per 32-byte half); L3 lines carry none.  All transactional
levels also carry a persist bit and a two-bit transaction ID, and every
level tracks a MESI coherence state plus a dirty flag.

Word values are stored per line in a fixed-length list indexed by word
number, filled from the backing memory on fetch, so that undo records can
capture pre-store values without a second memory access.

Perf note: the line is a ``__slots__`` class and the log bits live in a
single int bitmask (``log_mask``, bit *i* = word/group *i* logged) with a
recorded ``log_width`` — the hardware layout, and allocation-free on the
store path.  The ``log_bits`` property presents the historical
list-of-bool view for tests and tools; hot code uses the mask directly
via the precomputed :data:`AGGREGATE_MASK` / :data:`REPLICATE_MASK`
tables below.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.common import units
from repro.common.errors import SimulationError


class Mesi(enum.IntEnum):
    """MESI coherence states (Table III: MESI protocol).

    Interned small ints: members compare by identity on the hot path and
    hash at C speed (``object.__hash__``), unlike the default Enum hash.
    """

    MODIFIED = 0
    EXCLUSIVE = 1
    SHARED = 2
    INVALID = 3

    __hash__ = object.__hash__


#: Figure-5 aggregation, precomputed: ``AGGREGATE_MASK[l1_mask]`` is the
#: 2-bit L2 mask whose bit *g* is set iff *all four* L1 bits of group *g*
#: are set (logical conjunction per Section III-B1).
AGGREGATE_MASK = tuple(
    sum(
        1 << g
        for g in range(units.L2_LOG_BITS)
        if (m >> (g * units.L1_BITS_PER_L2_BIT)) & _GROUP == _GROUP
    )
    for _GROUP in ((1 << units.L1_BITS_PER_L2_BIT) - 1,)
    for m in range(1 << units.WORDS_PER_LINE)
)

#: Figure-5 replication, precomputed: ``REPLICATE_MASK[l2_mask]`` expands
#: each L2 bit into its four covered L1 bits.
REPLICATE_MASK = tuple(
    sum(
        ((1 << units.L1_BITS_PER_L2_BIT) - 1) << (g * units.L1_BITS_PER_L2_BIT)
        for g in range(units.L2_LOG_BITS)
        if m & (1 << g)
    )
    for m in range(1 << units.L2_LOG_BITS)
)

#: Popcount per possible L1 mask value (``int.bit_count`` needs 3.10+).
POPCOUNT = tuple(bin(m).count("1") for m in range(1 << units.WORDS_PER_LINE))


class CacheLine:
    """One resident cache line with SLPMT metadata.

    ``log_width`` depends on the level: 8 in L1 (per word), 2 in L2 (per
    32-byte group), 0 in L3.  ``tx_id`` is ``None`` when the line was not
    written inside a transaction tracked for lazy persistency.
    """

    __slots__ = (
        "addr",
        "words",
        "state",
        "dirty",
        "persist",
        "log_mask",
        "log_width",
        "tx_id",
    )

    def __init__(
        self,
        addr: int,
        words: List[int],
        state: Mesi = Mesi.EXCLUSIVE,
        dirty: bool = False,
        persist: bool = False,
        log_bits: Optional[List[bool]] = None,
        tx_id: Optional[int] = None,
    ) -> None:
        if addr % units.LINE_BYTES != 0:
            raise SimulationError(f"line address {addr:#x} not aligned")
        if len(words) != units.WORDS_PER_LINE:
            raise SimulationError(
                f"line must hold {units.WORDS_PER_LINE} words, got {len(words)}"
            )
        self.addr = addr
        self.words = words
        self.state = state
        self.dirty = dirty
        self.persist = persist
        self.tx_id = tx_id
        if log_bits is None:
            self.log_mask = 0
            self.log_width = 0
        else:
            self.log_width = len(log_bits)
            mask = 0
            for i, bit in enumerate(log_bits):
                if bit:
                    mask |= 1 << i
            self.log_mask = mask

    def __repr__(self) -> str:
        return (
            f"CacheLine(addr={self.addr:#x}, state={self.state.name}, "
            f"dirty={self.dirty}, persist={self.persist}, "
            f"log_mask={self.log_mask:#x}/{self.log_width}, tx_id={self.tx_id})"
        )

    # --- log-bit views ----------------------------------------------------

    @property
    def log_bits(self) -> List[bool]:
        """List-of-bool view of the log bitmask (LSB = word/group 0)."""
        mask = self.log_mask
        return [bool(mask & (1 << i)) for i in range(self.log_width)]

    @log_bits.setter
    def log_bits(self, bits: List[bool]) -> None:
        self.log_width = len(bits)
        mask = 0
        for i, bit in enumerate(bits):
            if bit:
                mask |= 1 << i
        self.log_mask = mask

    # --- word access ----------------------------------------------------

    def read_word(self, index: int) -> int:
        return self.words[index]

    def write_word(self, index: int, value: int) -> None:
        self.words[index] = value
        self.dirty = True
        self.state = Mesi.MODIFIED

    # --- SLPMT metadata ---------------------------------------------------

    def any_log_bit(self) -> bool:
        return self.log_mask != 0

    def all_log_bits(self) -> bool:
        width = self.log_width
        return width != 0 and self.log_mask == (1 << width) - 1

    def clear_transactional_state(self) -> None:
        """Drop persist/log/tx metadata (used when a line leaves the
        transactional domain, e.g. on fill from L3)."""
        self.persist = False
        self.log_mask = 0
        self.tx_id = None

    def is_lazy(self) -> bool:
        """A committed-lazy line: dirty, not scheduled for eager persist,
        and tagged with the transaction that produced it."""
        return self.dirty and not self.persist and self.tx_id is not None


def new_l1_line(addr: int, words: List[int]) -> CacheLine:
    """Create an L1 line with eight per-word log bits (Figure 5, top)."""
    line = CacheLine(addr=addr, words=words)
    line.log_width = units.WORDS_PER_LINE
    return line


def new_l2_line(addr: int, words: List[int]) -> CacheLine:
    """Create an L2 line with two per-32-byte log bits (Figure 5, bottom)."""
    line = CacheLine(addr=addr, words=words)
    line.log_width = units.L2_LOG_BITS
    return line


def new_l3_line(addr: int, words: List[int]) -> CacheLine:
    """Create an L3 line without SLPMT metadata."""
    return CacheLine(addr=addr, words=words)


def aggregate_log_bits_l1_to_l2(l1_bits: List[bool]) -> List[bool]:
    """Fold eight L1 log bits into two L2 bits by logical conjunction.

    Per Section III-B1, one L2 bit covers four words; it is set only when
    *all four* corresponding L1 bits are set, so a later fetch never skips
    a log record that was not actually created (at the price of possible
    duplicate logging, which the speculative-logging optimisation reduces).
    """
    if len(l1_bits) != units.WORDS_PER_LINE:
        raise SimulationError(f"expected {units.WORDS_PER_LINE} L1 log bits")
    group = units.L1_BITS_PER_L2_BIT
    return [all(l1_bits[i * group : (i + 1) * group]) for i in range(units.L2_LOG_BITS)]


def replicate_log_bits_l2_to_l1(l2_bits: List[bool]) -> List[bool]:
    """Expand two L2 log bits back into eight L1 bits (Section III-B1)."""
    if len(l2_bits) != units.L2_LOG_BITS:
        raise SimulationError(f"expected {units.L2_LOG_BITS} L2 log bits")
    out: List[bool] = []
    for bit in l2_bits:
        out.extend([bit] * units.L1_BITS_PER_L2_BIT)
    return out
