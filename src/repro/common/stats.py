"""Event counters and derived metrics collected during simulation.

A single :class:`SimStats` instance travels with a machine for the lifetime
of a run.  Counters are plain integers grouped by subsystem; the harness
reads them to compute the paper's two headline metrics — execution cycles
(for speedup) and bytes written to persistent memory (for write-traffic
reduction).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class SimStats:
    """Mutable counter bundle for one simulation run."""

    # --- execution ---------------------------------------------------
    cycles: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    storeTs: int = 0
    transactions: int = 0
    commits: int = 0
    aborts: int = 0

    # --- cache hierarchy ---------------------------------------------
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    l3_hits: int = 0
    l3_misses: int = 0
    l1_evictions: int = 0
    l2_evictions: int = 0
    l3_evictions: int = 0

    # --- persistent memory --------------------------------------------
    pm_reads: int = 0
    pm_data_lines_written: int = 0
    pm_log_lines_written: int = 0
    pm_bytes_written: int = 0
    pm_log_bytes_written: int = 0
    pm_data_bytes_written: int = 0
    wpq_stall_cycles: int = 0

    # --- logging subsystem ---------------------------------------------
    log_records_created: int = 0
    log_records_coalesced: int = 0
    log_records_discarded_lazy: int = 0
    log_records_persisted: int = 0
    duplicate_log_records: int = 0
    speculative_log_records: int = 0
    log_buffer_drains: int = 0
    log_words_logged: int = 0

    # --- selective logging / lazy persistency ---------------------------
    logfree_stores: int = 0
    lazy_lines_deferred: int = 0
    lazy_lines_forced: int = 0
    lazy_lines_never_persisted: int = 0
    signature_hits: int = 0
    txid_reclaims: int = 0

    # --- commit breakdown ------------------------------------------------
    commit_cycles: int = 0
    commit_lines_persisted: int = 0

    # --- abort retry / backoff -------------------------------------------
    tx_retries: int = 0
    backoff_waits: int = 0
    backoff_cycles: int = 0

    # --- multi-core contention -------------------------------------------
    # All four fire only through the coherence/scheduler glue in
    # repro.multicore, so single-core runs keep them at zero (passivity).
    conflicts: int = 0
    wound_wait_aborts: int = 0
    backoff_turns: int = 0
    forced_lazy_by_peer: int = 0

    # --- transaction service ---------------------------------------------
    # All of these fire only through repro.service, so plain harness runs
    # keep them at zero and the pre-service bench baselines stay
    # comparable.  ``service_queue_peak`` is a high-water mark, not a
    # count — meaningful per machine, not under add()/merged sums.
    service_requests: int = 0
    service_acked: int = 0
    service_rejected: int = 0
    service_reads: int = 0
    service_batches: int = 0
    service_batched_writes: int = 0
    service_queue_peak: int = 0

    def copy(self) -> "SimStats":
        """Return an independent snapshot of the current counters."""
        return SimStats(**self.as_dict())

    def as_dict(self) -> Dict[str, int]:
        """Return all counters as an ordinary dictionary."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def add(self, other: "SimStats") -> None:
        """Accumulate *other*'s counters into this instance."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def diff(self, baseline: "SimStats") -> "SimStats":
        """Return counters accumulated since the *baseline* snapshot."""
        out = SimStats()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name) - getattr(baseline, f.name))
        return out

    # --- serialisation ----------------------------------------------------

    def to_json(self) -> str:
        """All counters as a stable, sorted JSON object (bench artifacts)."""
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SimStats":
        """Inverse of :meth:`to_json`.

        Counters absent from the input default to zero (an old artifact
        stays loadable after new counters are added); unknown keys are
        rejected so schema drift is caught, not silently dropped.
        """
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("SimStats JSON must be an object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown SimStats counters: {', '.join(unknown)}")
        return cls(**{k: int(v) for k, v in data.items()})

    # --- derived metrics --------------------------------------------------

    @property
    def pm_total_lines_written(self) -> int:
        return self.pm_data_lines_written + self.pm_log_lines_written

    def l1_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    def __str__(self) -> str:
        parts = [f"{name}={value}" for name, value in self.as_dict().items() if value]
        return "SimStats(" + ", ".join(parts) + ")"

    def report(self, *, show_zero: bool = False) -> str:
        """A grouped, human-readable summary (gem5-style stats dump).

        By default zero-valued counters are hidden for brevity; pass
        ``show_zero=True`` when the dump feeds a diff — two runs then
        print the identical set of lines, so a counter dropping *to*
        zero shows up instead of silently vanishing from the report.
        """
        groups = {
            "execution": (
                "cycles", "instructions", "loads", "stores", "storeTs",
                "transactions", "commits", "aborts",
            ),
            "caches": (
                "l1_hits", "l1_misses", "l2_hits", "l2_misses", "l3_hits",
                "l3_misses", "l1_evictions", "l2_evictions", "l3_evictions",
            ),
            "persistent memory": (
                "pm_reads", "pm_data_lines_written", "pm_log_lines_written",
                "pm_bytes_written", "pm_log_bytes_written",
                "pm_data_bytes_written", "wpq_stall_cycles",
            ),
            "logging": (
                "log_records_created", "log_records_coalesced",
                "log_records_discarded_lazy", "log_records_persisted",
                "duplicate_log_records", "speculative_log_records",
                "log_buffer_drains", "log_words_logged",
            ),
            "selective logging / lazy persistency": (
                "logfree_stores", "lazy_lines_deferred", "lazy_lines_forced",
                "lazy_lines_never_persisted", "signature_hits", "txid_reclaims",
            ),
            "commit": ("commit_cycles", "commit_lines_persisted"),
            "retry / backoff": ("tx_retries", "backoff_waits", "backoff_cycles"),
            "contention (multi-core)": (
                "conflicts", "wound_wait_aborts", "backoff_turns",
                "forced_lazy_by_peer",
            ),
            "transaction service": (
                "service_requests", "service_acked", "service_rejected",
                "service_reads", "service_batches", "service_batched_writes",
                "service_queue_peak",
            ),
        }
        lines = []
        values = self.as_dict()
        for title, names in groups.items():
            shown = [
                (n, values[n]) for n in names if show_zero or values[n]
            ]
            if not shown:
                continue
            lines.append(f"--- {title} ---")
            for name, value in shown:
                lines.append(f"  {name:<28} {value:>14,}")
        return "\n".join(lines) if lines else "(no activity)"


@dataclass
class StatsScope:
    """Context manager that captures the delta of a stats object.

    Example::

        with StatsScope(machine.stats) as scope:
            run_transaction(machine)
        print(scope.delta.pm_bytes_written)
    """

    stats: SimStats
    delta: SimStats = field(default_factory=SimStats)
    _baseline: SimStats = field(default_factory=SimStats)

    def __enter__(self) -> "StatsScope":
        self._baseline = self.stats.copy()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.delta = self.stats.diff(self._baseline)
