"""Shared building blocks: units, configuration, statistics, and errors."""

from repro.common.config import (
    DEFAULT_CONFIG,
    CacheConfig,
    DramConfig,
    LogBufferConfig,
    PersistentMemoryConfig,
    SignatureConfig,
    SystemConfig,
)
from repro.common.errors import (
    AllocationError,
    AlignmentError,
    CompilerError,
    IsaError,
    RecoveryError,
    ReproError,
    SimulationError,
    TransactionAborted,
    TransactionError,
)
from repro.common.stats import SimStats, StatsScope

__all__ = [
    "DEFAULT_CONFIG",
    "CacheConfig",
    "DramConfig",
    "LogBufferConfig",
    "PersistentMemoryConfig",
    "SignatureConfig",
    "SystemConfig",
    "SimStats",
    "StatsScope",
    "ReproError",
    "IsaError",
    "AlignmentError",
    "SimulationError",
    "TransactionError",
    "TransactionAborted",
    "AllocationError",
    "RecoveryError",
    "CompilerError",
]
