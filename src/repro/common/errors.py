"""Exception hierarchy for the SLPMT reproduction.

Every error raised by the library derives from :class:`ReproError`, so
downstream users can catch one type.  The subclasses mirror the distinct
failure domains of the system: ISA misuse, simulator invariant violations,
transactional misuse, allocation failures, and recovery failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class IsaError(ReproError):
    """An instruction was constructed or executed with invalid operands."""


class AlignmentError(IsaError):
    """A memory operand was not aligned to the required granularity."""


class SimulationError(ReproError):
    """An internal simulator invariant was violated (a bug, not user error)."""


class TransactionError(ReproError):
    """Transactional API misuse (nested begin, commit outside txn, ...)."""


class TransactionAborted(ReproError):
    """Raised when a transaction is explicitly aborted (Section V-B)."""


class AllocationError(ReproError):
    """The persistent heap could not satisfy an allocation request."""


class PowerFailure(ReproError):
    """Injected crash signal: raised at a durability point to simulate a
    power loss; callers let it propagate to the run loop, which freezes
    the durable state and discards everything volatile."""


class RecoveryError(ReproError):
    """Post-crash recovery could not restore a consistent state."""


class CompilerError(ReproError):
    """The annotation compiler was given malformed IR."""
