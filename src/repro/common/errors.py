"""Exception hierarchy for the SLPMT reproduction.

Every error raised by the library derives from :class:`ReproError`, so
downstream users can catch one type.  The subclasses mirror the distinct
failure domains of the system: ISA misuse, simulator invariant violations,
transactional misuse, allocation failures, and recovery failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class IsaError(ReproError):
    """An instruction was constructed or executed with invalid operands."""


class AlignmentError(IsaError):
    """A memory operand was not aligned to the required granularity."""


class SimulationError(ReproError):
    """An internal simulator invariant was violated (a bug, not user error)."""


class LogParseError(SimulationError):
    """The serialized PM log stream could not be parsed.

    Carries the word-aligned PM address of the offending word so a
    report (or a debugger) can point at the exact media location.
    """

    def __init__(self, message: str, *, offset: int) -> None:
        super().__init__(f"{message} at {offset:#x}")
        self.offset = offset


class TransactionError(ReproError):
    """Transactional API misuse (nested begin, commit outside txn, ...)."""


class TransactionAborted(ReproError):
    """Raised when a transaction is explicitly aborted (Section V-B)."""


class AllocationError(ReproError):
    """The persistent heap could not satisfy an allocation request."""


class PowerFailure(ReproError):
    """Injected crash signal: raised at a durability point to simulate a
    power loss; callers let it propagate to the run loop, which freezes
    the durable state and discards everything volatile."""


class RecoveryError(ReproError):
    """Post-crash recovery could not restore a consistent state."""


class TornLogError(RecoveryError):
    """Strict recovery found a torn (partially appended) log tail.

    Real PM controllers guarantee only 8-byte write atomicity, so a
    power failure can leave the final log append cut at any word
    boundary; strict policy refuses to recover over such a tail.
    """

    def __init__(self, message: str, *, offset: int) -> None:
        super().__init__(f"{message} at {offset:#x}")
        self.offset = offset


class LogChecksumError(RecoveryError):
    """Strict recovery found a log entry whose checksum does not match.

    The entry's payload can not be trusted: replaying (redo) or
    restoring (undo) from it would propagate media corruption into
    application data, so strict policy surfaces the damage instead.
    """

    def __init__(self, message: str, *, offset: int) -> None:
        super().__init__(f"{message} at {offset:#x}")
        self.offset = offset


class RetryExhausted(TransactionError):
    """A transaction exhausted its abort-retry budget.

    Raised by the PTx retry helper after the configured number of
    deterministic backoff-and-retry rounds all ended in an abort.
    """


class CompilerError(ReproError):
    """The annotation compiler was given malformed IR."""
