"""System configuration mirroring Table III of the paper.

:class:`SystemConfig` collects every hardware parameter the evaluation
sweeps or fixes.  Defaults reproduce the paper's configuration exactly:
a 2 GHz x86-like core, a three-level MESI cache hierarchy, DDR4 DRAM for
volatile data, and an ADR persistent memory whose durability point is a
512-byte write-pending queue (WPQ) in the memory controller.

Latency fields are expressed in the unit the paper uses (cycles for caches,
nanoseconds for memories) and converted at one place
(:meth:`SystemConfig.pm_read_cycles` etc.) to keep sweep code readable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.common import units
from repro.common.errors import ReproError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and access latency of one cache level."""

    size_bytes: int
    ways: int
    latency_cycles: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * units.LINE_BYTES) != 0:
            raise ReproError(
                f"cache size {self.size_bytes} not divisible into "
                f"{self.ways}-way sets of {units.LINE_BYTES}-byte lines"
            )

    @property
    def num_lines(self) -> int:
        return self.size_bytes // units.LINE_BYTES

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways


@dataclass(frozen=True)
class PersistentMemoryConfig:
    """Intel-ADR persistent memory model (Table III, "PM" row).

    Data becomes durable once it reaches the write-pending queue; on a
    power failure the residual queue is drained by the platform (ADR), so
    the crash model treats WPQ contents as persistent.
    """

    wpq_bytes: int = 512
    wpq_insert_latency_ns: float = 4.0
    read_latency_ns: float = 150.0
    write_latency_ns: float = 500.0
    #: Round-trip cost of a *synchronous* persist (coherence request to
    #: the memory controller + durability ACK back to the core).  Paid by
    #: each ordered persist on the commit critical path; background
    #: write-backs and off-critical-path forced persists skip it
    #: (Section III-C3: those checks/persists ride the store machinery).
    persist_ack_latency_ns: float = 30.0
    #: Concurrent drain ways from the WPQ to the PM media (banking).
    #: Three ways at the 500 ns default write latency reproduces the
    #: paper's balance between commit-path persist cost and PM write
    #: bandwidth (see DESIGN.md, fidelity notes).
    drain_ways: int = 3

    @property
    def wpq_entries(self) -> int:
        """Number of cache-line slots in the write-pending queue."""
        return self.wpq_bytes // units.LINE_BYTES


@dataclass(frozen=True)
class DramConfig:
    """DDR4-2400 timing (Table III, "DRAM" row), reduced to an effective
    access latency for the additive cycle model."""

    trcd_ns: float = 14.0
    tcl_ns: float = 14.0
    trp_ns: float = 14.0
    tras_ns: float = 32.0
    twr_ns: float = 15.0
    row_hit_rate: float = 0.6

    def read_latency_ns(self) -> float:
        """Effective read latency: row hits pay CAS only, misses pay
        precharge + activate + CAS, blended by the configured hit rate."""
        hit = self.tcl_ns
        miss = self.trp_ns + self.trcd_ns + self.tcl_ns
        return self.row_hit_rate * hit + (1.0 - self.row_hit_rate) * miss

    def write_latency_ns(self) -> float:
        """Effective write latency (write recovery added on row misses)."""
        hit = self.tcl_ns
        miss = self.trp_ns + self.trcd_ns + self.tcl_ns + self.twr_ns
        return self.row_hit_rate * hit + (1.0 - self.row_hit_rate) * miss


@dataclass(frozen=True)
class LogBufferConfig:
    """Four-tier coalescing log buffer (Section III-B2).

    Tier *i* holds records covering ``2**i`` words.  Record sizes are
    8 bytes of address metadata plus the payload, i.e. 16/24/40/72 bytes;
    each tier is sized to the least common multiple of its record size and
    the cache-line size so that a full tier drains as whole lines, which
    yields exactly eight records per tier and 1216 bytes in total.
    """

    records_per_tier: int = 8
    num_tiers: int = 4

    def record_payload_words(self, tier: int) -> int:
        """Number of data words in a record of *tier* (1, 2, 4, 8)."""
        self._check_tier(tier)
        return 1 << tier

    def record_bytes(self, tier: int) -> int:
        """On-chip size of one record: 8-byte address + payload words."""
        self._check_tier(tier)
        return 8 + self.record_payload_words(tier) * units.WORD_BYTES

    def tier_bytes(self, tier: int) -> int:
        """Storage of one tier (records_per_tier records)."""
        return self.record_bytes(tier) * self.records_per_tier

    def total_bytes(self) -> int:
        """Total buffer storage (1216 bytes in the default configuration)."""
        return sum(self.tier_bytes(t) for t in range(self.num_tiers))

    def _check_tier(self, tier: int) -> None:
        if not 0 <= tier < self.num_tiers:
            raise ReproError(f"tier {tier} out of range 0..{self.num_tiers - 1}")


@dataclass(frozen=True)
class SignatureConfig:
    """Working-set signatures for lazy persistency (Section III-C3).

    Four 2048-bit Bloom signatures (256 bytes each, 1 KB total), one per
    in-flight-or-committed transaction ID; all share the same hash
    functions, as the paper specifies to save area and energy.
    """

    num_signatures: int = 4
    bits_per_signature: int = 2048
    num_hashes: int = 2

    @property
    def bytes_per_signature(self) -> int:
        return self.bits_per_signature // 8

    @property
    def total_bytes(self) -> int:
        return self.num_signatures * self.bytes_per_signature


@dataclass(frozen=True)
class SystemConfig:
    """Full machine configuration (Table III defaults)."""

    clock_ghz: float = 2.0
    l1: CacheConfig = CacheConfig(size_bytes=32 * units.KIB, ways=8, latency_cycles=4)
    l2: CacheConfig = CacheConfig(size_bytes=256 * units.KIB, ways=4, latency_cycles=12)
    l3: CacheConfig = CacheConfig(size_bytes=2 * units.MIB, ways=16, latency_cycles=40)
    dram: DramConfig = DramConfig()
    pm: PersistentMemoryConfig = PersistentMemoryConfig()
    log_buffer: LogBufferConfig = LogBufferConfig()
    signature: SignatureConfig = SignatureConfig()
    #: Number of per-core transaction IDs for lazy persistency (2-bit IDs).
    num_tx_ids: int = 4
    #: Section V-E: battery-backed caches.  The durability domain extends
    #: over the cache hierarchy and the log buffer: commits skip data
    #: persists entirely, and a power failure drains the log buffer and
    #: flushes dirty lines before volatile state is lost.  Logging is
    #: still maintained — it is what keeps transactions atomic when their
    #: working set overflows the cache (or when the crash flush lands
    #: mid-transaction data in PM).
    battery_backed_cache: bool = False

    def cycles(self, ns: float) -> int:
        """Convert nanoseconds to cycles at the configured clock."""
        return units.ns_to_cycles(ns, self.clock_ghz)

    def pm_read_cycles(self) -> int:
        return self.cycles(self.pm.read_latency_ns)

    def pm_write_cycles(self) -> int:
        return self.cycles(self.pm.write_latency_ns)

    def wpq_insert_cycles(self) -> int:
        return self.cycles(self.pm.wpq_insert_latency_ns)

    def persist_ack_cycles(self) -> int:
        return self.cycles(self.pm.persist_ack_latency_ns)

    def dram_read_cycles(self) -> int:
        return self.cycles(self.dram.read_latency_ns())

    def dram_write_cycles(self) -> int:
        return self.cycles(self.dram.write_latency_ns())

    def with_pm_write_latency(self, write_latency_ns: float) -> "SystemConfig":
        """Return a copy with a different PM write latency (Fig. 12 sweep)."""
        pm = dataclasses.replace(self.pm, write_latency_ns=write_latency_ns)
        return dataclasses.replace(self, pm=pm)

    def with_wpq_bytes(self, wpq_bytes: int) -> "SystemConfig":
        """Return a copy with a different WPQ capacity (ablation)."""
        pm = dataclasses.replace(self.pm, wpq_bytes=wpq_bytes)
        return dataclasses.replace(self, pm=pm)

    def with_battery_backed_cache(self) -> "SystemConfig":
        """Return a copy with Section V-E battery-backed caches enabled."""
        return dataclasses.replace(self, battery_backed_cache=True)

    def with_num_tx_ids(self, num_tx_ids: int) -> "SystemConfig":
        """Return a copy with a different transaction-ID count (ablation).

        The signature file grows with the pool: one working-set
        signature per transaction ID (Section III-C3).
        """
        if num_tx_ids < 2:
            raise ReproError("lazy persistency needs at least two tx IDs")
        signature = dataclasses.replace(self.signature, num_signatures=num_tx_ids)
        return dataclasses.replace(self, num_tx_ids=num_tx_ids, signature=signature)


#: The paper's exact configuration, importable as a ready-made default.
DEFAULT_CONFIG = SystemConfig()
