"""Fundamental size and geometry constants shared across the simulator.

The paper (Table III and Section III) fixes the machine word at eight bytes
and the cache line at 64 bytes; every log-bit layout, tier size, and address
split in the repository derives from these two constants, so they live in one
place.
"""

from __future__ import annotations

#: Machine word size in bytes (the logging granularity of L1 log bits).
WORD_BYTES = 8

#: Cache line size in bytes.
LINE_BYTES = 64

#: Number of machine words per cache line.
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES  # 8

#: Granularity of one L2 log bit in bytes (Section III-B1).
L2_LOG_GRAIN_BYTES = 32

#: Number of L1 log bits aggregated into one L2 log bit.
L1_BITS_PER_L2_BIT = L2_LOG_GRAIN_BYTES // WORD_BYTES  # 4

#: Number of log bits per L2 cache line.
L2_LOG_BITS = LINE_BYTES // L2_LOG_GRAIN_BYTES  # 2

KIB = 1024
MIB = 1024 * KIB


def line_addr(addr: int) -> int:
    """Return the cache-line-aligned base address containing *addr*."""
    return addr & ~(LINE_BYTES - 1)


def word_addr(addr: int) -> int:
    """Return the word-aligned base address containing *addr*."""
    return addr & ~(WORD_BYTES - 1)


def word_index(addr: int) -> int:
    """Return the index (0..7) of the word containing *addr* in its line."""
    return (addr & (LINE_BYTES - 1)) // WORD_BYTES


def line_offset(addr: int) -> int:
    """Return the byte offset of *addr* within its cache line."""
    return addr & (LINE_BYTES - 1)


def is_word_aligned(addr: int) -> bool:
    """Return True when *addr* is aligned to the machine word."""
    return addr % WORD_BYTES == 0


def is_line_aligned(addr: int) -> bool:
    """Return True when *addr* is aligned to the cache line."""
    return addr % LINE_BYTES == 0


def lines_spanned(addr: int, nbytes: int) -> int:
    """Return how many distinct cache lines the byte range touches."""
    if nbytes <= 0:
        return 0
    first = line_addr(addr)
    last = line_addr(addr + nbytes - 1)
    return (last - first) // LINE_BYTES + 1


def ns_to_cycles(ns: float, clock_ghz: float) -> int:
    """Convert nanoseconds to (rounded-up) clock cycles at *clock_ghz*."""
    cycles = ns * clock_ghz
    whole = int(cycles)
    return whole if cycles == whole else whole + 1
