"""Durable-state invariant library for the fuzz campaign.

Every fuzzable subject — the eight Table-II workloads plus the Section
V-A in-place table — gets three named checks against its *durable* image
(what PM holds after a crash and recovery):

* ``structure`` — the data structure's own integrity invariants
  (:meth:`~repro.workloads.base.Workload.check_integrity`: chains
  resolve, red-black and BST properties hold, the heap property holds,
  radix paths match key prefixes, ...);
* ``completeness`` — every committed key (the oracle tracked by the
  driver) maps to its exact committed value;
* ``exactness`` — the structure contains *no* key beyond the committed
  set: an uncommitted insert must never become durable, and a committed
  remove must never resurrect.

The exactness check is what the pre-existing property tests lacked; it
needs each workload to expose its full durable key set, which the
``iter_keys`` adapter on every workload provides.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple, Union

from repro.common import units
from repro.common.errors import RecoveryError, SimulationError
from repro.runtime.ptx import PTx
from repro.workloads import WORKLOADS, InPlaceTable, Workload

#: Anything the campaign can drive and check.
Subject = Union[Workload, InPlaceTable]

#: Canonical durable state: sorted ``(key, value-words)`` pairs.
State = Tuple[Tuple[int, Tuple[int, ...]], ...]


class InvariantViolation(Exception):
    """A durable-state invariant failed after crash recovery."""

    def __init__(self, check: str, message: str) -> None:
        super().__init__(f"{check}: {message}")
        self.check = check
        self.message = message


def make_subject(workload: str, rt: PTx, *, value_bytes: int = 32) -> Subject:
    """Instantiate a fuzz subject by name (workload names plus
    ``"inplace"`` for the Section V-A in-place table)."""
    if workload == "inplace":
        return InPlaceTable(rt, num_slots=32, seq_capacity=256)
    return WORKLOADS[workload](rt, value_bytes=value_bytes)


# ----------------------------------------------------------------------
# checks
# ----------------------------------------------------------------------


def check_subject(subject: Subject) -> None:
    """Run every invariant against the durable image; raise
    :class:`InvariantViolation` on the first failure."""
    if isinstance(subject, InPlaceTable):
        _check_inplace(subject)
    else:
        _check_workload(subject)


def _check_workload(subject: Workload) -> None:
    read = subject.reader(durable=True)
    try:
        subject.check_integrity(read)
    except RecoveryError as exc:
        raise InvariantViolation("structure", str(exc)) from exc

    for key in sorted(subject.expected):
        try:
            got = subject.lookup(key, durable=True)
        except SimulationError:
            got = None
        want = subject.expected[key]
        if got != want:
            raise InvariantViolation(
                "completeness",
                f"{subject.name}: committed key {key} reads "
                f"{None if got is None else got[:2]}, want {want[:2]}",
            )

    durable_keys = sorted(set(subject.iter_keys(read)))
    extra = [k for k in durable_keys if k not in subject.expected]
    if extra:
        raise InvariantViolation(
            "exactness",
            f"{subject.name}: uncommitted key(s) {extra[:4]} present in "
            f"the durable structure",
        )
    missing = sorted(set(subject.expected) - set(durable_keys))
    if missing:
        raise InvariantViolation(
            "exactness",
            f"{subject.name}: committed key(s) {missing[:4]} missing from "
            f"the durable key set",
        )


def _check_inplace(subject: InPlaceTable) -> None:
    machine = subject.rt.machine
    read = machine.durable_read
    from repro.workloads.inplace import HEADER

    count = read(HEADER.addr(subject.header, "seq_count"))
    capacity = read(HEADER.addr(subject.header, "seq_capacity"))
    if count > capacity:
        raise InvariantViolation(
            "structure", f"inplace: seq_count {count} exceeds capacity {capacity}"
        )
    slots = read(HEADER.addr(subject.header, "slots"))
    for index in range(subject.num_slots):
        got = read(slots + index * units.WORD_BYTES)
        want = subject.expected.get(index, 0)
        check = "completeness" if index in subject.expected else "exactness"
        if got != want:
            raise InvariantViolation(
                check, f"inplace: slot {index} holds {got}, expected {want}"
            )


# ----------------------------------------------------------------------
# canonical durable state (differential checking)
# ----------------------------------------------------------------------


def durable_state(subject: Subject) -> State:
    """The subject's durable *logical* state, layout-independent.

    Two runs of the same committed operation sequence must produce the
    same logical state regardless of scheme or annotation policy — this
    is what the campaign's differential check compares against the FG
    baseline.
    """
    if isinstance(subject, InPlaceTable):
        return tuple(
            (i, (subject.read_slot(i, durable=True),))
            for i in range(subject.num_slots)
        )
    read = subject.reader(durable=True)
    out: List[Tuple[int, Tuple[int, ...]]] = []
    # Multiplicity is kept on purpose: a resurrected node plus a fresh
    # re-insert shows up as a duplicated key and must not compare equal
    # to the baseline's single entry.
    for key in sorted(subject.iter_keys(read)):
        try:
            value = subject.lookup(key, durable=True)
        except SimulationError:
            # A poisoned node can leave a NULL/garbage value pointer; the
            # state must still be *comparable* (it will never equal any
            # legal baseline state), not crash the checker.
            out.append((key, ("<unreadable>",)))
            continue
        out.append((key, tuple(value) if value is not None else ()))
    return tuple(out)


def committed_state(subject: Subject) -> State:
    """The oracle's view of the same canonical state."""
    if isinstance(subject, InPlaceTable):
        return tuple(
            (i, (subject.expected.get(i, 0),)) for i in range(subject.num_slots)
        )
    return tuple(
        (key, tuple(subject.expected[key])) for key in sorted(subject.expected)
    )
