"""Deterministic crash-consistency fuzzing campaign engine.

The modules layer on :mod:`repro.recovery.crashsim`:

* :mod:`repro.fuzz.oplog` — per-transaction outcome capture via the
  :class:`~repro.runtime.ptx.PTx` ``op_log`` hook;
* :mod:`repro.fuzz.invariants` — durable-state checkers for every
  workload (structure, completeness, exactness, canonical state);
* :mod:`repro.fuzz.campaign` — the crash-point enumerating/sampling
  campaign driver with differential checking against the FG baseline;
* :mod:`repro.fuzz.minimize` — violation shrinking and JSON replay;
* :mod:`repro.fuzz.report` — the deterministic campaign table;
* :mod:`repro.fuzz.cli` — ``python -m repro fuzz``.
"""

from repro.fuzz.campaign import (
    DEFAULT_CELLS,
    POLICIES,
    STRESS_CONFIG,
    CaseResult,
    CellReport,
    FuzzCell,
    Violation,
    generate_ops,
    run_campaign,
    run_case,
    run_cell,
)
from repro.fuzz.invariants import (
    InvariantViolation,
    check_subject,
    durable_state,
    make_subject,
)
from repro.fuzz.minimize import Reproducer, minimize, replay
from repro.fuzz.oplog import OpLog
from repro.fuzz.report import format_report

__all__ = [
    "DEFAULT_CELLS",
    "POLICIES",
    "STRESS_CONFIG",
    "CaseResult",
    "CellReport",
    "FuzzCell",
    "Violation",
    "InvariantViolation",
    "OpLog",
    "Reproducer",
    "check_subject",
    "durable_state",
    "format_report",
    "generate_ops",
    "make_subject",
    "minimize",
    "replay",
    "run_campaign",
    "run_case",
    "run_cell",
]
