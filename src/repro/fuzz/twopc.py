"""The cross-shard 2PC crash/fault campaign (``fuzz --twopc``).

Every cell is a (workload × scheme × shard count × fault flavour)
quadruple over a deterministic :class:`~repro.shard.deployment.
ShardedDeployment`, and every case crashes (or media-damages) one
identically seeded deployment, runs
:func:`~repro.shard.recovery.recover_deployment`, and judges **global
atomicity**:

* **crash cells** sweep two surfaces:

  - **protocol steps** — the coordinator's :class:`~repro.shard.twopc.
    StepTracker` cuts ``commit_global`` at every named step a dry run
    enumerated: before any prepare, after each participant's prepared
    seal, immediately before the decision persist, after the durable
    decision but before any participant applied, and after each
    participant's apply (stratified sampling keeps every step *family*
    covered when the budget is smaller than the step count);
  - **persist points** — ``schedule_crash_after_persists`` on each
    labelled machine (``coord``, ``s0``, ``s1``, …) crashes that node
    mid-drain: participants die inside prepare-persist and group-commit
    drains, the coordinator inside its decision persist.

* **torn-decision cells** attack the durable protocol records
  themselves: every word-boundary cut of every protocol append
  (``prepare`` / ``prepared`` / ``decide-commit`` / ``decide-abort``)
  plus one seeded bit flip per append, injected through the node's
  :class:`~repro.faults.FaultModel` exactly as the media-fault campaign
  does, then judged under ``salvage`` recovery with the same strict
  probe / detection discipline.

The acceptance contract (module docstring of :mod:`repro.shard.
deployment`): every *acked* write durable on its home shard; the only
other legal per-shard image adds one whole in-flight group-commit
batch; the in-flight global transaction is all-or-nothing *across*
shards — resolved commit means its writes are durable on every
participant, presumed abort means they appear on none.

Everything derives from ``(cell, seed)``; cells fan out over
:func:`repro.parallel.engine.run_tasks` and the ordered merge keeps
reports byte-identical between serial and ``--jobs N`` campaigns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import (
    LogChecksumError,
    PowerFailure,
    RecoveryError,
    SimulationError,
    TornLogError,
)
from repro.faults import BitFlip, FaultModel, TornAppend
from repro.faults.model import tear_points
from repro.fuzz.campaign import STRESS_CONFIG, CaseResult, _diagnose
from repro.fuzz.invariants import InvariantViolation, durable_state
from repro.mem.logregion import TWOPC_KINDS
from repro.recovery.engine import recover
from repro.shard.deployment import ShardedConfig, ShardedDeployment
from repro.shard.recovery import recover_deployment
from repro.shard.router import home_shard
from repro.shard.twopc import GTX_BASE

#: Fault flavours a cell can carry.
TWOPC_FAULTS = ("crash", "torn-decision")

#: Scheme grid: the FG baseline and the full design.
TWOPC_FUZZ_SCHEMES: Tuple[str, ...] = ("FG", "SLPMT")

#: Shard counts the default campaign sweeps (2 = the minimal protocol,
#: 3 = majorities and partial prepare sets exist).
TWOPC_FUZZ_SHARDS: Tuple[int, ...] = (2, 3)

#: Traffic for the campaign: txn-heavy so cross-shard 2PC dominates.
TWOPC_FUZZ_MIX: Dict[str, float] = {
    "put": 0.35,
    "get": 0.10,
    "scan": 0.05,
    "txn": 0.50,
}


@dataclass(frozen=True)
class TwoPCCell:
    """One (workload × scheme × shards × fault flavour) campaign cell."""

    workload: str
    scheme: str
    shards: int
    fault: str

    def __str__(self) -> str:
        return f"2pc/{self.workload}/{self.scheme}/s{self.shards}/{self.fault}"


#: The default grid: 8 cells — both schemes × both shard counts ×
#: both fault flavours over the hashtable (O(1) paths keep per-case
#: cost low enough for the exhaustive step sweeps).
DEFAULT_TWOPC_CELLS: Tuple[TwoPCCell, ...] = tuple(
    TwoPCCell("hashtable", scheme, shards, fault)
    for scheme in TWOPC_FUZZ_SCHEMES
    for shards in TWOPC_FUZZ_SHARDS
    for fault in TWOPC_FAULTS
)


@dataclass
class TwoPCViolation:
    """One global-atomicity failure with its full reproduction key."""

    cell: TwoPCCell
    crash_kind: str
    crash_point: int
    check: str
    message: str
    fault: Optional[Dict] = None

    def __str__(self) -> str:
        where = f"@{self.crash_kind}:{self.crash_point}"
        if self.fault is not None:
            where = f"@{self.fault}"
        return f"{self.cell} {where} [{self.check}] {self.message}"


@dataclass
class TwoPCCellReport:
    """Coverage and outcome summary for one 2PC cell."""

    cell: TwoPCCell
    num_requests: int
    step_points_total: int
    step_points_run: int
    persist_points_total: int
    persist_points_run: int
    fault_points_total: int
    fault_points_run: int
    exhaustive: bool
    #: Clean-run witnesses (determinism anchors for the report).
    acked: int
    xshard_commits: int
    cycles: int = 0
    pm_bytes: int = 0
    violations: List[TwoPCViolation] = field(default_factory=list)

    @property
    def cases_run(self) -> int:
        return self.step_points_run + self.persist_points_run + self.fault_points_run


@dataclass
class TwoPCCampaignResult:
    """A whole 2PC campaign: parameters plus every cell report."""

    budget: int
    seed: int
    num_clients: int
    requests_per_client: int
    value_bytes: int
    cells: List[TwoPCCellReport] = field(default_factory=list)

    @property
    def total_cases(self) -> int:
        return sum(c.cases_run for c in self.cells)

    @property
    def violations(self) -> List[TwoPCViolation]:
        return [v for c in self.cells for v in c.violations]


# ----------------------------------------------------------------------
# one case
# ----------------------------------------------------------------------


def _build_twopc(
    cell: TwoPCCell,
    *,
    num_clients: int,
    requests_per_client: int,
    value_bytes: int,
    seed: int,
    config: SystemConfig,
) -> ShardedDeployment:
    """A fresh sharded deployment for one campaign case.

    Small key space with zipfian skew keeps multi-key transactions
    crossing shards; ``verify=False`` because the campaign applies its
    own two-state + global-atomicity judgement instead of the clean-run
    verify."""
    from repro.service.tm import GroupCommitPolicy

    return ShardedDeployment(
        ShardedConfig(
            num_shards=cell.shards,
            workload=cell.workload,
            scheme=cell.scheme,
            num_clients=num_clients,
            requests_per_client=requests_per_client,
            value_bytes=value_bytes,
            num_keys=24,
            theta=0.6,
            mix=dict(TWOPC_FUZZ_MIX),
            txn_keys=4,
            arrival_cycles=600,
            batch=GroupCommitPolicy(batch_size=4),
            seed=seed,
            verify=False,
        ),
        config=config,
    )


def _check_twopc_recovered(dep: ShardedDeployment, resolution) -> Tuple[Optional[str], str]:
    """Post-recovery acceptance: per-shard structure, placement and
    two-state oracles, then the explicit cross-shard atomicity check on
    the in-flight global transaction (see module docstring)."""
    durable: Dict[int, Tuple] = {}
    for node in dep.nodes:
        subject = node.subject
        try:
            if hasattr(subject, "check_integrity"):
                subject.check_integrity(subject.reader(durable=True))
            durable[node.shard_id] = durable_state(subject)
        except RecoveryError as exc:
            return f"s{node.shard_id}: {exc}", "structure"
        except SimulationError as exc:
            return (
                f"s{node.shard_id}: durable traversal failed: {exc}",
                "structure",
            )
        except InvariantViolation as exc:
            return f"s{node.shard_id}: {exc.message}", exc.check

    # Placement: the router is the only write path, so every durable
    # key must live on its home shard.
    for shard, state in sorted(durable.items()):
        for key, _value in state:
            home = home_shard(key, dep.cfg.num_shards)
            if home != shard:
                return (
                    f"key {key} durable on shard {shard} but homes to {home}",
                    "placement",
                )

    # Per-shard two-state acceptance: the acked oracle, or the oracle
    # plus one whole in-flight group-commit batch (its commit marker
    # may have turned durable on the crashing drain).
    for node in dep.nodes:
        committed = {k: tuple(v) for k, v in node.rm.committed.items()}
        acceptable = [tuple(sorted(committed.items()))]
        if dep.inflight_local is not None and dep.inflight_local[0] == node.shard_id:
            after = dict(committed)
            for request in dep.inflight_local[1]:
                for key, value in zip(request.keys, request.values):
                    after[key] = tuple(value)
            acceptable.append(tuple(sorted(after.items())))
        if durable[node.shard_id] not in acceptable:
            message, check = _diagnose(durable[node.shard_id], acceptable[0])
            return f"s{node.shard_id}: {message}", check

    # Global atomicity of the in-flight global transaction: resolved
    # commit => its writes durable on *every* participant; presumed
    # abort => durable on *none* (beyond what the oracle already holds).
    if dep.inflight_gtx is not None:
        gtx, plan, _request = dep.inflight_gtx
        fate = resolution.fates.get(gtx, "abort")
        label = f"g{gtx - GTX_BASE}"
        if fate == "commit":
            missing = sorted(
                shard
                for shard, writes in plan.items()
                if any(
                    dict(durable[shard]).get(key) != tuple(value)
                    for key, value in writes
                )
            )
            if missing:
                return (
                    f"{label} resolved commit but shard(s) {missing} "
                    "lack its writes",
                    "atomicity",
                )
        else:
            for shard, writes in sorted(plan.items()):
                oracle = dep.nodes[shard].rm.committed
                leaked = sorted(
                    key
                    for key, value in writes
                    if dict(durable[shard]).get(key) == tuple(value)
                    and oracle.get(key) != tuple(value)
                )
                if leaked:
                    return (
                        f"{label} presumed abort but shard {shard} durably "
                        f"holds its write(s) {leaked[:4]}",
                        "atomicity",
                    )

    # Resolution sanity: the campaign never damages prepare records of
    # a *decided* transaction, so a commit over an unsealed stage means
    # the resolver mis-read the logs.
    if resolution.incomplete_stages:
        return (
            f"commit resolved over unsealed stage(s) "
            f"{resolution.incomplete_stages[:4]}",
            "resolution",
        )
    return None, ""


def run_twopc_case(
    cell: TwoPCCell,
    crash_kind: str,
    crash_point: int,
    *,
    fault: Optional[Dict] = None,
    num_clients: int = 4,
    requests_per_client: int = 12,
    value_bytes: int = 32,
    seed: int = 7,
    config: SystemConfig = STRESS_CONFIG,
) -> CaseResult:
    """One crash-inject-recover-judge case over a fresh deployment.

    *crash_kind* is ``"step"`` (coordinator protocol-step index),
    ``"persist:<node>"`` (the *crash_point*-th post-setup durability
    event on machine ``coord`` / ``s0`` / …), or ``"fault"`` with
    *fault* carrying media-fault coordinates
    ``{"node": label, "kind": "torn-tail", "append": i, "cut": c}`` or
    ``{"node": label, "kind": "bit-flip", "append": i, "word": w,
    "bit": b}`` on that node's global append clock."""
    dep = _build_twopc(
        cell,
        num_clients=num_clients,
        requests_per_client=requests_per_client,
        value_bytes=value_bytes,
        seed=seed,
        config=config,
    )
    machines = dict(dep.all_machines())
    model: Optional[FaultModel] = None
    if fault is not None:
        if fault["kind"] == "torn-tail":
            model = FaultModel(TornAppend(fault["append"], fault["cut"]))
        elif fault["kind"] == "bit-flip":
            model = FaultModel(
                BitFlip(fault["append"], fault["word"], fault["bit"])
            )
        else:
            raise SimulationError(f"unknown fault kind {fault['kind']!r}")
        machines[fault["node"]].pm.fault_model = model
    elif crash_kind == "step":
        dep.coordinator.steps.crash_at = crash_point
    elif crash_kind.startswith("persist:"):
        machines[crash_kind.split(":", 1)[1]].schedule_crash_after_persists(
            crash_point
        )
    else:
        raise ValueError(f"unknown crash kind {crash_kind!r}")

    crashed = False
    try:
        dep.serve()
    except PowerFailure:
        crashed = True

    if not crashed:
        # The armed point lay beyond this run (caller-chosen points
        # only): finish cleanly and judge like a clean run.
        for machine in machines.values():
            machine.cancel_scheduled_crash()
            machine.pm.fault_model = None
        dep.coordinator.steps.crash_at = None
        violation: Optional[str] = None
        check = ""
        try:
            dep.finish()
            for node in dep.nodes:
                node.rm.sync_expected()
                node.subject.verify(durable=True)
        except RecoveryError as exc:
            violation, check = str(exc), "structure"
        return CaseResult(
            crashed=False,
            committed_ops=len(dep.committed),
            tx_commits=dep.coordinator.committed_gtxs,
            violation=violation,
            check=check,
        )

    dep.crash()
    damaged = False
    if fault is not None:
        pm = machines[fault["node"]].pm
        pm.fault_model = None
        parsed = pm.parse_byte_log_tolerant()
        damaged = not parsed.clean
        # Detection: damage the injection actually left on media must
        # be visible to the tolerant byte parse (CRC escape otherwise).
        if pm.log_damage and not damaged:
            return CaseResult(
                crashed=True,
                committed_ops=len(dep.committed),
                tx_commits=dep.coordinator.committed_gtxs,
                violation=f"media damage escaped the tolerant parse ({fault})",
                check="detection",
            )
        # Strict probe on a snapshot: must raise iff damaged.
        strict_err: Optional[RecoveryError] = None
        try:
            recover(
                pm.snapshot(),
                mode=machines[fault["node"]].scheme.logging_mode,
                from_bytes=True,
                policy="strict",
            )
        except (TornLogError, LogChecksumError) as err:
            strict_err = err
        if damaged and strict_err is None:
            return CaseResult(
                crashed=True,
                committed_ops=len(dep.committed),
                tx_commits=dep.coordinator.committed_gtxs,
                violation="strict recovery silently accepted a damaged "
                f"protocol log on {fault['node']}",
                check="strict",
            )
        if not damaged and strict_err is not None:
            return CaseResult(
                crashed=True,
                committed_ops=len(dep.committed),
                tx_commits=dep.coordinator.committed_gtxs,
                violation=f"strict recovery rejected an undamaged log "
                f"on {fault['node']}: {strict_err}",
                check="strict",
            )

    try:
        resolution = recover_deployment(
            dep,
            policy="salvage" if fault is not None else "strict",
            from_bytes=fault is not None,
        )
    except RecoveryError as exc:
        return CaseResult(
            crashed=True,
            committed_ops=len(dep.committed),
            tx_commits=dep.coordinator.committed_gtxs,
            violation=f"deployment recovery failed: {exc}",
            check="salvage" if fault is not None else "structure",
        )
    if fault is not None and damaged:
        report = resolution.reports.get(fault["node"])
        if report is not None and not report.damaged:
            return CaseResult(
                crashed=True,
                committed_ops=len(dep.committed),
                tx_commits=dep.coordinator.committed_gtxs,
                violation=f"salvage recovery on {fault['node']} did not "
                "disclose the media damage",
                check="report",
            )

    violation, check = _check_twopc_recovered(dep, resolution)
    return CaseResult(
        crashed=True,
        committed_ops=len(dep.committed),
        tx_commits=dep.coordinator.committed_gtxs,
        violation=violation,
        check=check,
    )


# ----------------------------------------------------------------------
# cell driver
# ----------------------------------------------------------------------


def _step_family(name: str) -> str:
    """The protocol-step family of a step name (``prepared:g3:s1`` →
    ``prepared``) — the unit of stratified coverage."""
    return name.split(":", 1)[0]


def _stratified_steps(
    names: Sequence[str], budget: int, rng: random.Random
) -> List[int]:
    """Pick up to *budget* step indices covering every step family.

    Round-robin over families (each shuffled by the cell RNG) so even a
    small budget crashes the coordinator at least once per protocol
    step kind — the ISSUE's coverage floor."""
    if len(names) <= budget:
        return list(range(len(names)))
    families: Dict[str, List[int]] = {}
    for index, name in enumerate(names):
        families.setdefault(_step_family(name), []).append(index)
    pools = [families[f] for f in sorted(families)]
    for pool in pools:
        rng.shuffle(pool)
    picked: List[int] = []
    round_i = 0
    while len(picked) < budget and any(pools):
        for pool in pools:
            if round_i < len(pool) and len(picked) < budget:
                picked.append(pool[round_i])
        round_i += 1
        if all(round_i >= len(pool) for pool in pools):
            break
    return sorted(picked)


def run_twopc_cell(
    cell: TwoPCCell,
    *,
    budget: int,
    seed: int,
    num_clients: int = 4,
    requests_per_client: int = 12,
    value_bytes: int = 32,
    config: SystemConfig = STRESS_CONFIG,
) -> TwoPCCellReport:
    """Run one 2PC cell's sweep.

    A clean dry run of the identical deployment enumerates the
    coordinator's protocol steps, every machine's post-setup durability
    events, and (for torn-decision cells) the protocol appends in every
    node's log; the sweep then crashes a fresh, identically seeded
    deployment at each chosen coordinate.  Case failures that are *not*
    judged violations (a harness bug, not a consistency bug) re-raise
    with the dying node and protocol step attached, so the parallel
    engine's :class:`~repro.parallel.engine.WorkerCrash` names exactly
    which shard and step died."""
    dep = _build_twopc(
        cell,
        num_clients=num_clients,
        requests_per_client=requests_per_client,
        value_bytes=value_bytes,
        seed=seed,
        config=config,
    )
    machines = dep.all_machines()
    events0 = {label: m.wpq.total_inserts for label, m in machines}
    appends0 = {label: m.pm.log_appends for label, m in machines}
    cycles0 = sum(m.now for _, m in machines)
    pm0 = sum(m.stats.pm_bytes_written for _, m in machines)
    dep.serve()
    step_names = list(dep.coordinator.steps.names)
    events = {
        label: m.wpq.total_inserts - events0[label] for label, m in machines
    }
    protocol_appends: List[Tuple[str, int, int]] = []
    for label, m in machines:
        for index in range(appends0[label], m.pm.log_appends):
            extent = m.pm.log_extents[index]
            if extent.entry.kind in TWOPC_KINDS:
                protocol_appends.append((label, index, extent.nwords))
    clean = dep.result()
    cycles = sum(m.now for _, m in machines) - cycles0
    pm_bytes = sum(m.stats.pm_bytes_written for _, m in machines) - pm0
    # Clean-run sanity: the deployment's own durability verify must
    # pass before any crash case of this cell is trusted.
    dep.finish()
    for node in dep.nodes:
        node.rm.sync_expected()
        node.subject.verify(durable=True)

    rng = random.Random(f"2pc-cell:{seed}:{cell}")
    step_points: List[int] = []
    persist_points: List[Tuple[str, int]] = []
    faults: List[Dict] = []
    if cell.fault == "crash":
        step_points = _stratified_steps(step_names, max(1, budget // 2), rng)
        persist_pool = [
            (label, point)
            for label, _ in machines
            for point in range(events[label])
        ]
        persist_budget = max(0, budget - len(step_points))
        if len(persist_pool) <= persist_budget:
            persist_points = persist_pool
        else:
            persist_points = sorted(
                rng.sample(persist_pool, persist_budget)
            )
        exhaustive = (
            len(step_points) == len(step_names)
            and len(persist_points) == len(persist_pool)
        )
        fault_pool_total = 0
    else:
        for label, index, nwords in protocol_appends:
            for _, cut in tear_points([nwords]):
                faults.append(
                    {
                        "node": label,
                        "kind": "torn-tail",
                        "append": index,
                        "cut": cut,
                    }
                )
            flip_rng = random.Random(f"2pc-flip:{seed}:{cell}:{label}:{index}")
            faults.append(
                {
                    "node": label,
                    "kind": "bit-flip",
                    "append": index,
                    "word": flip_rng.randrange(nwords),
                    "bit": flip_rng.randrange(64),
                }
            )
        fault_pool_total = len(faults)
        if len(faults) > budget:
            faults = [faults[i] for i in sorted(rng.sample(range(len(faults)), budget))]
            exhaustive = False
        else:
            exhaustive = True

    report = TwoPCCellReport(
        cell=cell,
        num_requests=clean.requests,
        step_points_total=len(step_names),
        step_points_run=len(step_points),
        persist_points_total=sum(events.values()),
        persist_points_run=len(persist_points),
        fault_points_total=fault_pool_total,
        fault_points_run=len(faults),
        exhaustive=exhaustive,
        acked=clean.acked,
        xshard_commits=clean.xshard_commits,
        cycles=cycles,
        pm_bytes=pm_bytes,
    )

    def _run(crash_kind: str, crash_point: int, fault: Optional[Dict], where: str) -> None:
        try:
            result = run_twopc_case(
                cell,
                crash_kind,
                crash_point,
                fault=fault,
                num_clients=num_clients,
                requests_per_client=requests_per_client,
                value_bytes=value_bytes,
                seed=seed,
                config=config,
            )
        except Exception as exc:  # harness failure, not a judged violation
            raise SimulationError(
                f"2pc case died at {where}: {type(exc).__name__}: {exc}"
            ) from exc
        if result.violation is not None:
            report.violations.append(
                TwoPCViolation(
                    cell=cell,
                    crash_kind=crash_kind,
                    crash_point=crash_point,
                    check=result.check,
                    message=result.violation,
                    fault=fault,
                )
            )

    for point in step_points:
        _run("step", point, None, f"step #{point} ({step_names[point]})")
    for label, point in persist_points:
        _run(f"persist:{label}", point, None, f"persist #{point} on {label}")
    for fault in faults:
        _run("fault", int(fault.get("cut", fault.get("bit", 0))), fault,
             f"{fault['kind']} on {fault['node']} append #{fault['append']}")
    return report


def run_twopc_campaign(
    budget: int = 70,
    seed: int = 7,
    *,
    cells: Sequence[TwoPCCell] = DEFAULT_TWOPC_CELLS,
    num_clients: int = 4,
    requests_per_client: int = 12,
    value_bytes: int = 32,
    config: SystemConfig = STRESS_CONFIG,
    jobs: int = 1,
    progress=None,
) -> TwoPCCampaignResult:
    """Run the 2PC campaign grid.

    *budget* is the per-cell case budget.  Cells are keyed by
    ``(cell, seed)`` alone — each worker rebuilds the deployment from
    those scalars, and the ordered merge keeps the report byte-identical
    to a serial campaign."""
    from repro.parallel import engine
    from repro.parallel.tasks import twopc_fuzz_cell

    result = TwoPCCampaignResult(
        budget=budget,
        seed=seed,
        num_clients=num_clients,
        requests_per_client=requests_per_client,
        value_bytes=value_bytes,
    )
    descriptors = [
        {
            "cell": cell,
            "budget": budget,
            "seed": seed,
            "num_clients": num_clients,
            "requests_per_client": requests_per_client,
            "value_bytes": value_bytes,
            "config": config,
        }
        for cell in cells
    ]
    result.cells = engine.run_tasks(
        twopc_fuzz_cell,
        descriptors,
        jobs=jobs,
        labels=[str(cell) for cell in cells],
        progress=progress,
    )
    return result
