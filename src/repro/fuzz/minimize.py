"""Violation shrinking and byte-for-byte replay.

A :class:`Reproducer` freezes everything a violation needs to fire
again: workload, scheme, annotation policy, value size, the exact op
list and the exact crash point.  Because the whole simulator is
deterministic (no wall clock, no unseeded RNG anywhere in the stack),
re-running a reproducer executes the identical instruction stream and
produces the identical violation message.

Shrinking happens in two phases:

1. **ops** — greedy delta-debugging: repeatedly try dropping chunks of
   the op sequence (halving chunk sizes down to single ops) and keep any
   candidate that still violates *somewhere* in its crash-point sweep;
2. **crash point** — over the shrunk ops, take the smallest crash point
   of the same kind that still violates.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.fuzz.campaign import (
    STRESS_CONFIG,
    CaseResult,
    Op,
    Violation,
    baseline_states,
    run_case,
)


@dataclass
class Reproducer:
    """A self-contained, JSON-serialisable violation reproducer.

    *fault* is None for plain crash violations.  For media-fault
    violations it carries the exact injection coordinates (the fault
    dict of :func:`repro.fuzz.faultcampaign.run_fault_case`) and
    ``crash_kind`` is ``"fault"``; *crash_point* is then meaningful only
    for drop-drain plans (it is mirrored inside the fault dict).
    """

    workload: str
    scheme: str
    policy: str
    value_bytes: int
    ops: List[Op]
    crash_kind: str
    crash_point: int
    violation: str
    check: str
    fault: Optional[Dict] = None

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Reproducer":
        data = json.loads(text)
        data["ops"] = [list(op) for op in data["ops"]]
        data.setdefault("fault", None)  # tolerate pre-fault files
        return cls(**data)

    @classmethod
    def from_violation(
        cls, violation: Violation, ops: Sequence[Op], *, value_bytes: int
    ) -> "Reproducer":
        return cls(
            workload=violation.cell.workload,
            scheme=violation.cell.scheme,
            policy=violation.cell.policy,
            value_bytes=value_bytes,
            ops=[list(op) for op in ops],
            crash_kind=violation.crash_kind,
            crash_point=violation.crash_point,
            violation=violation.message,
            check=violation.check,
        )

    @classmethod
    def from_fault_violation(
        cls, violation, ops: Sequence[Op], *, value_bytes: int
    ) -> "Reproducer":
        """Freeze a :class:`repro.fuzz.faultcampaign.FaultViolation`."""
        from repro.fuzz.faultcampaign import FAULT_POLICY  # local: avoid cycle

        return cls(
            workload=violation.cell.workload,
            scheme=violation.cell.scheme,
            policy=FAULT_POLICY,
            value_bytes=value_bytes,
            ops=[list(op) for op in ops],
            crash_kind="fault",
            crash_point=int(violation.fault.get("crash_point", 0)),
            violation=violation.message,
            check=violation.check,
            fault=dict(violation.fault),
        )


def replay(
    rep: Reproducer, *, config: SystemConfig = STRESS_CONFIG
) -> CaseResult:
    """Re-run a reproducer exactly; deterministic by construction."""
    if rep.fault is not None:
        from repro.fuzz.faultcampaign import run_fault_case  # local: avoid cycle

        return run_fault_case(
            rep.workload,
            rep.scheme,
            rep.policy,
            rep.ops,
            rep.fault,
            value_bytes=rep.value_bytes,
            config=config,
        )
    return run_case(
        rep.workload,
        rep.scheme,
        rep.policy,
        rep.ops,
        rep.crash_kind,
        rep.crash_point,
        value_bytes=rep.value_bytes,
        config=config,
    )


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------

#: Safety cap on crash points scanned per shrink candidate.
_SCAN_CAP = 800


def _count_points(
    rep: Reproducer, ops: Sequence[Op], *, config: SystemConfig
) -> int:
    """Post-setup crash-point total for *ops* of the reproducer's kind."""
    from repro.fuzz.campaign import _build, apply_op  # local: avoid cycle

    machine, _rt, subject = _build(
        rep.workload, rep.scheme, rep.policy,
        value_bytes=rep.value_bytes, config=config,
    )
    events0 = machine.wpq.total_inserts
    instrs0 = machine.stats.instructions
    for op in ops:
        apply_op(subject, op)
    if rep.crash_kind == "persist":
        return machine.wpq.total_inserts - events0
    return machine.stats.instructions - instrs0


def _first_violation(
    rep: Reproducer,
    ops: Sequence[Op],
    *,
    config: SystemConfig,
    stop_at: Optional[int] = None,
) -> Optional[Tuple[int, str, str]]:
    """Scan crash points in ascending order; return the first violating
    ``(point, message, check)`` or None."""
    total = _count_points(rep, ops, config=config)
    if stop_at is not None:
        total = min(total, stop_at)
    total = min(total, _SCAN_CAP)
    baseline = baseline_states(
        rep.workload, ops, value_bytes=rep.value_bytes, config=config
    )
    for point in range(total):
        result = run_case(
            rep.workload, rep.scheme, rep.policy, ops, rep.crash_kind, point,
            value_bytes=rep.value_bytes, config=config, baseline=baseline,
        )
        if result.violation is not None:
            return point, result.violation, result.check
    return None


def _fault_violates(
    rep: Reproducer, ops: Sequence[Op], *, config: SystemConfig
) -> Optional[Tuple[str, str]]:
    """Whether the reproducer's fixed fault plan still violates over
    *ops*: ``(message, check)`` or None.  Dropping ops shifts the wire
    layout, so a candidate whose plan no longer fires (append index past
    the shorter run, drain count past the journal) simply stops
    violating and is rejected."""
    from repro.fuzz.faultcampaign import run_fault_case  # local: avoid cycle

    result = run_fault_case(
        rep.workload, rep.scheme, rep.policy, ops, rep.fault,
        value_bytes=rep.value_bytes, config=config,
    )
    if result.violation is None:
        return None
    return result.violation, result.check


def _minimize_fault(rep: Reproducer, *, config: SystemConfig) -> Reproducer:
    """Greedy op shrinking with the fault plan held fixed.  Fault
    coordinates address the physical wire layout, so unlike crash points
    they cannot be re-scanned independently of the ops — only the op
    list shrinks."""
    ops = [list(op) for op in rep.ops]
    chunk = max(1, len(ops) // 2)
    while chunk >= 1:
        start = 0
        while start < len(ops) and len(ops) > 1:
            candidate = ops[:start] + ops[start + chunk:]
            if candidate and _fault_violates(rep, candidate, config=config):
                ops = candidate
            else:
                start += chunk
        chunk //= 2

    found = _fault_violates(rep, ops, config=config)
    if found is None:
        ops = [list(op) for op in rep.ops]
        found = _fault_violates(rep, ops, config=config)
    if found is None:
        raise AssertionError(
            "fault reproducer no longer violates — non-deterministic subject?"
        )
    message, check = found
    return Reproducer(
        workload=rep.workload,
        scheme=rep.scheme,
        policy=rep.policy,
        value_bytes=rep.value_bytes,
        ops=ops,
        crash_kind="fault",
        crash_point=rep.crash_point,
        violation=message,
        check=check,
        fault=dict(rep.fault),
    )


def minimize(
    rep: Reproducer, *, config: SystemConfig = STRESS_CONFIG
) -> Reproducer:
    """Shrink *rep* to a minimal reproducer (ops first, then the crash
    point), re-verifying the violation at every step."""
    if rep.fault is not None:
        return _minimize_fault(rep, config=config)
    ops = [list(op) for op in rep.ops]

    chunk = max(1, len(ops) // 2)
    while chunk >= 1:
        start = 0
        while start < len(ops) and len(ops) > 1:
            candidate = ops[:start] + ops[start + chunk:]
            if candidate and _first_violation(rep, candidate, config=config):
                ops = candidate
            else:
                start += chunk
        chunk //= 2

    found = _first_violation(rep, ops, config=config)
    if found is None:
        # Shrinking never removes the original failure: the unshrunk ops
        # still violate, so fall back to them wholesale.
        ops = [list(op) for op in rep.ops]
        found = _first_violation(rep, ops, config=config)
    if found is None:
        raise AssertionError(
            "reproducer no longer violates — non-deterministic subject?"
        )
    point, message, check = found
    return Reproducer(
        workload=rep.workload,
        scheme=rep.scheme,
        policy=rep.policy,
        value_bytes=rep.value_bytes,
        ops=ops,
        crash_kind=rep.crash_kind,
        crash_point=point,
        violation=message,
        check=check,
    )
