"""Violation shrinking and byte-for-byte replay.

A :class:`Reproducer` freezes everything a violation needs to fire
again: workload, scheme, annotation policy, value size, the exact op
list and the exact crash point.  Because the whole simulator is
deterministic (no wall clock, no unseeded RNG anywhere in the stack),
re-running a reproducer executes the identical instruction stream and
produces the identical violation message.

Shrinking happens in two phases:

1. **ops** — greedy delta-debugging: repeatedly try dropping chunks of
   the op sequence (halving chunk sizes down to single ops) and keep any
   candidate that still violates *somewhere* in its crash-point sweep;
2. **crash point** — over the shrunk ops, take the smallest crash point
   of the same kind that still violates.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.fuzz.campaign import (
    STRESS_CONFIG,
    CaseResult,
    Op,
    Violation,
    baseline_states,
    run_case,
)


@dataclass
class Reproducer:
    """A self-contained, JSON-serialisable violation reproducer.

    *fault* is None for plain crash violations.  For media-fault
    violations it carries the exact injection coordinates (the fault
    dict of :func:`repro.fuzz.faultcampaign.run_fault_case`) and
    ``crash_kind`` is ``"fault"``; *crash_point* is then meaningful only
    for drop-drain plans (it is mirrored inside the fault dict).

    *service* / *twopc* switch the replay target from an op sequence to
    a whole deterministic workload: a transaction-service run
    (:func:`repro.fuzz.campaign.run_service_case`) or a sharded 2PC
    deployment (:func:`repro.fuzz.twopc.run_twopc_case`).  They carry
    the generation scalars (clients, requests per client, seed, batch
    size / shard count); *ops* is then empty and shrinking reduces the
    request volume instead of the op list.  A 2PC reproducer may also
    carry *fault* (a torn/flipped protocol record, with its node label).
    """

    workload: str
    scheme: str
    policy: str
    value_bytes: int
    ops: List[Op]
    crash_kind: str
    crash_point: int
    violation: str
    check: str
    fault: Optional[Dict] = None
    service: Optional[Dict] = None
    twopc: Optional[Dict] = None

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Reproducer":
        data = json.loads(text)
        data["ops"] = [list(op) for op in data["ops"]]
        data.setdefault("fault", None)  # tolerate pre-fault files
        data.setdefault("service", None)  # tolerate pre-service files
        data.setdefault("twopc", None)  # tolerate pre-2PC files
        return cls(**data)

    @classmethod
    def from_violation(
        cls, violation: Violation, ops: Sequence[Op], *, value_bytes: int
    ) -> "Reproducer":
        return cls(
            workload=violation.cell.workload,
            scheme=violation.cell.scheme,
            policy=violation.cell.policy,
            value_bytes=value_bytes,
            ops=[list(op) for op in ops],
            crash_kind=violation.crash_kind,
            crash_point=violation.crash_point,
            violation=violation.message,
            check=violation.check,
        )

    @classmethod
    def from_fault_violation(
        cls, violation, ops: Sequence[Op], *, value_bytes: int
    ) -> "Reproducer":
        """Freeze a :class:`repro.fuzz.faultcampaign.FaultViolation`."""
        from repro.fuzz.faultcampaign import FAULT_POLICY  # local: avoid cycle

        return cls(
            workload=violation.cell.workload,
            scheme=violation.cell.scheme,
            policy=FAULT_POLICY,
            value_bytes=value_bytes,
            ops=[list(op) for op in ops],
            crash_kind="fault",
            crash_point=int(violation.fault.get("crash_point", 0)),
            violation=violation.message,
            check=violation.check,
            fault=dict(violation.fault),
        )

    @classmethod
    def from_service_violation(
        cls,
        violation: Violation,
        *,
        num_clients: int,
        requests_per_client: int,
        value_bytes: int,
        seed: int,
    ) -> "Reproducer":
        """Freeze a service-campaign violation (cell is a
        :class:`repro.fuzz.campaign.ServiceCell`)."""
        return cls(
            workload=violation.cell.workload,
            scheme=violation.cell.scheme,
            policy="none",
            value_bytes=value_bytes,
            ops=[],
            crash_kind=violation.crash_kind,
            crash_point=violation.crash_point,
            violation=violation.message,
            check=violation.check,
            service={
                "batch_size": violation.cell.batch_size,
                "locking": violation.cell.locking,
                "num_clients": num_clients,
                "requests_per_client": requests_per_client,
                "seed": seed,
            },
        )

    @classmethod
    def from_twopc_violation(
        cls,
        violation,
        *,
        num_clients: int,
        requests_per_client: int,
        value_bytes: int,
        seed: int,
    ) -> "Reproducer":
        """Freeze a :class:`repro.fuzz.twopc.TwoPCViolation`."""
        return cls(
            workload=violation.cell.workload,
            scheme=violation.cell.scheme,
            policy="none",
            value_bytes=value_bytes,
            ops=[],
            crash_kind=violation.crash_kind,
            crash_point=violation.crash_point,
            violation=violation.message,
            check=violation.check,
            fault=dict(violation.fault) if violation.fault else None,
            twopc={
                "shards": violation.cell.shards,
                "num_clients": num_clients,
                "requests_per_client": requests_per_client,
                "seed": seed,
            },
        )


def _twopc_cell(rep: Reproducer):
    from repro.fuzz.twopc import TwoPCCell  # local: avoid cycle

    return TwoPCCell(
        rep.workload,
        rep.scheme,
        rep.twopc["shards"],
        "torn-decision" if rep.fault is not None else "crash",
    )


def replay(
    rep: Reproducer, *, config: SystemConfig = STRESS_CONFIG
) -> CaseResult:
    """Re-run a reproducer exactly; deterministic by construction."""
    if rep.twopc is not None:
        from repro.fuzz.twopc import run_twopc_case  # local: avoid cycle

        return run_twopc_case(
            _twopc_cell(rep),
            rep.crash_kind,
            rep.crash_point,
            fault=rep.fault,
            num_clients=rep.twopc["num_clients"],
            requests_per_client=rep.twopc["requests_per_client"],
            value_bytes=rep.value_bytes,
            seed=rep.twopc["seed"],
            config=config,
        )
    if rep.service is not None:
        from repro.fuzz.campaign import ServiceCell, run_service_case

        return run_service_case(
            ServiceCell(
                rep.workload,
                rep.scheme,
                rep.service["batch_size"],
                locking=rep.service.get("locking", False),
            ),
            rep.crash_kind,
            rep.crash_point,
            num_clients=rep.service["num_clients"],
            requests_per_client=rep.service["requests_per_client"],
            value_bytes=rep.value_bytes,
            seed=rep.service["seed"],
            config=config,
        )
    if rep.fault is not None:
        from repro.fuzz.faultcampaign import run_fault_case  # local: avoid cycle

        return run_fault_case(
            rep.workload,
            rep.scheme,
            rep.policy,
            rep.ops,
            rep.fault,
            value_bytes=rep.value_bytes,
            config=config,
        )
    return run_case(
        rep.workload,
        rep.scheme,
        rep.policy,
        rep.ops,
        rep.crash_kind,
        rep.crash_point,
        value_bytes=rep.value_bytes,
        config=config,
    )


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------

#: Safety cap on crash points scanned per shrink candidate.
_SCAN_CAP = 800


def _count_points(
    rep: Reproducer, ops: Sequence[Op], *, config: SystemConfig
) -> int:
    """Post-setup crash-point total for *ops* of the reproducer's kind."""
    from repro.fuzz.campaign import _build, apply_op  # local: avoid cycle

    machine, _rt, subject = _build(
        rep.workload, rep.scheme, rep.policy,
        value_bytes=rep.value_bytes, config=config,
    )
    events0 = machine.wpq.total_inserts
    instrs0 = machine.stats.instructions
    for op in ops:
        apply_op(subject, op)
    if rep.crash_kind == "persist":
        return machine.wpq.total_inserts - events0
    return machine.stats.instructions - instrs0


def _first_violation(
    rep: Reproducer,
    ops: Sequence[Op],
    *,
    config: SystemConfig,
    stop_at: Optional[int] = None,
) -> Optional[Tuple[int, str, str]]:
    """Scan crash points in ascending order; return the first violating
    ``(point, message, check)`` or None."""
    total = _count_points(rep, ops, config=config)
    if stop_at is not None:
        total = min(total, stop_at)
    total = min(total, _SCAN_CAP)
    baseline = baseline_states(
        rep.workload, ops, value_bytes=rep.value_bytes, config=config
    )
    for point in range(total):
        result = run_case(
            rep.workload, rep.scheme, rep.policy, ops, rep.crash_kind, point,
            value_bytes=rep.value_bytes, config=config, baseline=baseline,
        )
        if result.violation is not None:
            return point, result.violation, result.check
    return None


def _fault_violates(
    rep: Reproducer, ops: Sequence[Op], *, config: SystemConfig
) -> Optional[Tuple[str, str]]:
    """Whether the reproducer's fixed fault plan still violates over
    *ops*: ``(message, check)`` or None.  Dropping ops shifts the wire
    layout, so a candidate whose plan no longer fires (append index past
    the shorter run, drain count past the journal) simply stops
    violating and is rejected."""
    from repro.fuzz.faultcampaign import run_fault_case  # local: avoid cycle

    result = run_fault_case(
        rep.workload, rep.scheme, rep.policy, ops, rep.fault,
        value_bytes=rep.value_bytes, config=config,
    )
    if result.violation is None:
        return None
    return result.violation, result.check


def _minimize_fault(rep: Reproducer, *, config: SystemConfig) -> Reproducer:
    """Greedy op shrinking with the fault plan held fixed.  Fault
    coordinates address the physical wire layout, so unlike crash points
    they cannot be re-scanned independently of the ops — only the op
    list shrinks."""
    ops = [list(op) for op in rep.ops]
    chunk = max(1, len(ops) // 2)
    while chunk >= 1:
        start = 0
        while start < len(ops) and len(ops) > 1:
            candidate = ops[:start] + ops[start + chunk:]
            if candidate and _fault_violates(rep, candidate, config=config):
                ops = candidate
            else:
                start += chunk
        chunk //= 2

    found = _fault_violates(rep, ops, config=config)
    if found is None:
        ops = [list(op) for op in rep.ops]
        found = _fault_violates(rep, ops, config=config)
    if found is None:
        raise AssertionError(
            "fault reproducer no longer violates — non-deterministic subject?"
        )
    message, check = found
    return Reproducer(
        workload=rep.workload,
        scheme=rep.scheme,
        policy=rep.policy,
        value_bytes=rep.value_bytes,
        ops=ops,
        crash_kind="fault",
        crash_point=rep.crash_point,
        violation=message,
        check=check,
        fault=dict(rep.fault),
    )


# ----------------------------------------------------------------------
# service / 2PC shrinking (request volume instead of the op list)
# ----------------------------------------------------------------------


def _service_first_violation(
    rep: Reproducer,
    num_clients: int,
    requests_per_client: int,
    *,
    config: SystemConfig,
) -> Optional[Tuple[int, str, str]]:
    """Ascending crash-point scan of the reproducer's kind over a
    service run of the given request volume."""
    from repro.fuzz.campaign import (  # local: avoid cycle
        ServiceCell,
        _build_service,
        run_service_case,
    )

    cell = ServiceCell(
        rep.workload,
        rep.scheme,
        rep.service["batch_size"],
        locking=rep.service.get("locking", False),
    )
    seed = rep.service["seed"]
    svc = _build_service(
        cell,
        num_clients=num_clients,
        requests_per_client=requests_per_client,
        value_bytes=rep.value_bytes,
        seed=seed,
        config=config,
    )
    events0 = svc.machine.wpq.total_inserts
    instrs0 = svc.machine.stats.instructions
    svc.serve()
    if rep.crash_kind == "persist":
        total = svc.machine.wpq.total_inserts - events0
    else:
        total = svc.machine.stats.instructions - instrs0
    for point in range(min(total, _SCAN_CAP)):
        result = run_service_case(
            cell,
            rep.crash_kind,
            point,
            num_clients=num_clients,
            requests_per_client=requests_per_client,
            value_bytes=rep.value_bytes,
            seed=seed,
            config=config,
        )
        if result.violation is not None:
            return point, result.violation, result.check
    return None


def _twopc_first_violation(
    rep: Reproducer,
    num_clients: int,
    requests_per_client: int,
    *,
    config: SystemConfig,
) -> Optional[Tuple[int, str, str]]:
    """The 2PC counterpart: step/persist kinds re-scan their point
    space ascending; a fault plan is held fixed (its coordinates address
    one node's physical append clock) and the candidate is accepted iff
    the plan still fires and violates."""
    from repro.fuzz.twopc import _build_twopc, run_twopc_case  # local: avoid cycle

    cell = _twopc_cell(rep)
    seed = rep.twopc["seed"]
    if rep.fault is not None:
        result = run_twopc_case(
            cell,
            rep.crash_kind,
            rep.crash_point,
            fault=rep.fault,
            num_clients=num_clients,
            requests_per_client=requests_per_client,
            value_bytes=rep.value_bytes,
            seed=seed,
            config=config,
        )
        if result.violation is None:
            return None
        return rep.crash_point, result.violation, result.check
    dep = _build_twopc(
        cell,
        num_clients=num_clients,
        requests_per_client=requests_per_client,
        value_bytes=rep.value_bytes,
        seed=seed,
        config=config,
    )
    machines = dict(dep.all_machines())
    if rep.crash_kind == "step":
        dep.serve()
        total = len(dep.coordinator.steps.names)
    elif rep.crash_kind.startswith("persist:"):
        machine = machines[rep.crash_kind.split(":", 1)[1]]
        before = machine.wpq.total_inserts
        dep.serve()
        total = machine.wpq.total_inserts - before
    else:
        raise ValueError(f"unknown crash kind {rep.crash_kind!r}")
    for point in range(min(total, _SCAN_CAP)):
        result = run_twopc_case(
            cell,
            rep.crash_kind,
            point,
            num_clients=num_clients,
            requests_per_client=requests_per_client,
            value_bytes=rep.value_bytes,
            seed=seed,
            config=config,
        )
        if result.violation is not None:
            return point, result.violation, result.check
    return None


def _shrink_volume(first_violation, num_clients: int, requests_per_client: int):
    """Greedy request-volume shrinking shared by the service and 2PC
    paths: halve the per-client request count while the violation
    survives, then peel clients off one at a time."""
    found = None
    rpc = requests_per_client
    while rpc > 1:
        candidate = max(1, rpc // 2)
        result = first_violation(num_clients, candidate)
        if result is None:
            break
        rpc, found = candidate, result
    nc = num_clients
    while nc > 1:
        result = first_violation(nc - 1, rpc)
        if result is None:
            break
        nc, found = nc - 1, result
    if found is None:
        found = first_violation(nc, rpc)
    return found, nc, rpc


def _minimize_service(rep: Reproducer, *, config: SystemConfig) -> Reproducer:
    found, nc, rpc = _shrink_volume(
        lambda n, r: _service_first_violation(rep, n, r, config=config),
        rep.service["num_clients"],
        rep.service["requests_per_client"],
    )
    if found is None:
        raise AssertionError(
            "service reproducer no longer violates — non-deterministic run?"
        )
    point, message, check = found
    service = dict(rep.service)
    service["num_clients"] = nc
    service["requests_per_client"] = rpc
    return Reproducer(
        workload=rep.workload,
        scheme=rep.scheme,
        policy=rep.policy,
        value_bytes=rep.value_bytes,
        ops=[],
        crash_kind=rep.crash_kind,
        crash_point=point,
        violation=message,
        check=check,
        service=service,
    )


def _minimize_twopc(rep: Reproducer, *, config: SystemConfig) -> Reproducer:
    found, nc, rpc = _shrink_volume(
        lambda n, r: _twopc_first_violation(rep, n, r, config=config),
        rep.twopc["num_clients"],
        rep.twopc["requests_per_client"],
    )
    if found is None:
        raise AssertionError(
            "2PC reproducer no longer violates — non-deterministic run?"
        )
    point, message, check = found
    twopc = dict(rep.twopc)
    twopc["num_clients"] = nc
    twopc["requests_per_client"] = rpc
    return Reproducer(
        workload=rep.workload,
        scheme=rep.scheme,
        policy=rep.policy,
        value_bytes=rep.value_bytes,
        ops=[],
        crash_kind=rep.crash_kind,
        crash_point=point,
        violation=message,
        check=check,
        fault=dict(rep.fault) if rep.fault else None,
        twopc=twopc,
    )


def minimize(
    rep: Reproducer, *, config: SystemConfig = STRESS_CONFIG
) -> Reproducer:
    """Shrink *rep* to a minimal reproducer (ops first, then the crash
    point; request volume first for service/2PC reproducers), re-verifying
    the violation at every step."""
    if rep.twopc is not None:
        return _minimize_twopc(rep, config=config)
    if rep.service is not None:
        return _minimize_service(rep, config=config)
    if rep.fault is not None:
        return _minimize_fault(rep, config=config)
    ops = [list(op) for op in rep.ops]

    chunk = max(1, len(ops) // 2)
    while chunk >= 1:
        start = 0
        while start < len(ops) and len(ops) > 1:
            candidate = ops[:start] + ops[start + chunk:]
            if candidate and _first_violation(rep, candidate, config=config):
                ops = candidate
            else:
                start += chunk
        chunk //= 2

    found = _first_violation(rep, ops, config=config)
    if found is None:
        # Shrinking never removes the original failure: the unshrunk ops
        # still violate, so fall back to them wholesale.
        ops = [list(op) for op in rep.ops]
        found = _first_violation(rep, ops, config=config)
    if found is None:
        raise AssertionError(
            "reproducer no longer violates — non-deterministic subject?"
        )
    point, message, check = found
    return Reproducer(
        workload=rep.workload,
        scheme=rep.scheme,
        policy=rep.policy,
        value_bytes=rep.value_bytes,
        ops=ops,
        crash_kind=rep.crash_kind,
        crash_point=point,
        violation=message,
        check=check,
    )
