"""Deterministic campaign report formatting.

The table is stable for a given ``(budget, seed)``: no timestamps, no
machine-dependent fields, rows in fixed cell order — re-running the
same command must emit the identical file (the determinism acceptance
check diffs two runs).
"""

from __future__ import annotations

from typing import List

from repro.fuzz.campaign import (
    CampaignResult,
    MultiCoreCampaignResult,
    ServiceCampaignResult,
)
from repro.fuzz.twopc import TwoPCCampaignResult

_COLUMNS = (
    ("workload", 10),
    ("scheme", 7),
    ("policy", 8),
    ("ops", 4),
    ("persist-pts", 12),
    ("instr-pts", 12),
    ("cases", 6),
    ("commits", 8),
    ("cycles", 9),
    ("pm-bytes", 9),
    ("violations", 10),
)


def _row(values: List[str]) -> str:
    return "  ".join(
        str(v).ljust(width) for (_, width), v in zip(_COLUMNS, values)
    ).rstrip()


def format_report(result: CampaignResult) -> str:
    """The campaign table plus totals, as written to
    ``benchmarks/results/fuzz_campaign.txt``."""
    lines = [
        "SLPMT crash-consistency fuzz campaign",
        f"budget={result.budget} per cell, seed={result.seed}, "
        f"ops/cell={result.num_ops}, value_bytes={result.value_bytes}, "
        "config=stress (512B/1KB/8KB caches)",
        "",
        _row([name for name, _ in _COLUMNS]),
        _row(["-" * min(w, 10) for _, w in _COLUMNS]),
    ]
    for cell in result.cells:
        persist = f"{cell.persist_points_run}/{cell.persist_points_total}"
        if cell.exhaustive:
            persist += " all"
        instr = f"{cell.instr_points_run}/{cell.instr_points_total}"
        lines.append(
            _row(
                [
                    cell.cell.workload,
                    cell.cell.scheme,
                    cell.cell.policy,
                    cell.num_ops,
                    persist,
                    instr,
                    cell.cases_run,
                    cell.tx_commits,
                    cell.cycles,
                    cell.pm_bytes,
                    len(cell.violations),
                ]
            )
        )
    exhaustive_cells = sum(1 for c in result.cells if c.exhaustive)
    lines += [
        "",
        f"cells: {len(result.cells)} "
        f"({exhaustive_cells} with exhaustive durability-point coverage)",
        f"cases: {result.total_cases}",
        f"violations: {len(result.violations)}",
    ]
    for violation in result.violations:
        lines.append(f"  VIOLATION {violation}")
    lines.append("")
    return "\n".join(lines)


_2PC_COLUMNS = (
    ("workload", 10),
    ("scheme", 7),
    ("shards", 6),
    ("fault", 13),
    ("reqs", 5),
    ("step-pts", 10),
    ("persist-pts", 12),
    ("fault-pts", 10),
    ("cases", 6),
    ("acked", 6),
    ("xcommits", 8),
    ("violations", 10),
)


def _twopc_row(values: List[str]) -> str:
    return "  ".join(
        str(v).ljust(width) for (_, width), v in zip(_2PC_COLUMNS, values)
    ).rstrip()


def format_twopc_report(result: TwoPCCampaignResult) -> str:
    """The 2PC-campaign table plus totals, as written to
    ``benchmarks/results/twopc_campaign.txt``."""
    lines = [
        "SLPMT cross-shard 2PC crash campaign",
        f"budget={result.budget} per cell, seed={result.seed}, "
        f"clients={result.num_clients}x{result.requests_per_client} requests, "
        f"value_bytes={result.value_bytes}, "
        "config=stress (512B/1KB/8KB caches)",
        "acceptance: acked => durable on every home shard; the in-flight "
        "global txn is all-or-nothing",
        "across shards (resolved commit => applied everywhere, presumed "
        "abort => applied nowhere)",
        "",
        _twopc_row([name for name, _ in _2PC_COLUMNS]),
        _twopc_row(["-" * min(w, 10) for _, w in _2PC_COLUMNS]),
    ]
    for cell in result.cells:
        steps = f"{cell.step_points_run}/{cell.step_points_total}"
        persist = f"{cell.persist_points_run}/{cell.persist_points_total}"
        faults = f"{cell.fault_points_run}/{cell.fault_points_total}"
        if cell.exhaustive:
            if cell.cell.fault == "crash":
                steps += " all"
            else:
                faults += " all"
        lines.append(
            _twopc_row(
                [
                    cell.cell.workload,
                    cell.cell.scheme,
                    cell.cell.shards,
                    cell.cell.fault,
                    cell.num_requests,
                    steps,
                    persist,
                    faults,
                    cell.cases_run,
                    cell.acked,
                    cell.xshard_commits,
                    len(cell.violations),
                ]
            )
        )
    torn_cells = sum(
        1 for c in result.cells
        if c.cell.fault == "torn-decision" and c.fault_points_run
    )
    lines += [
        "",
        f"cells: {len(result.cells)} "
        f"({torn_cells} attacking durable decision records)",
        f"cases: {result.total_cases}",
        f"violations: {len(result.violations)}",
    ]
    for violation in result.violations:
        lines.append(f"  VIOLATION {violation}")
    lines.append("")
    return "\n".join(lines)


_MC_COLUMNS = (
    ("workload", 10),
    ("scheme", 7),
    ("cores", 5),
    ("theta", 5),
    ("switch-pts", 12),
    ("cases", 6),
    ("conflicts", 9),
    ("aborts", 7),
    ("commits", 8),
    ("cycles", 9),
    ("pm-bytes", 9),
    ("violations", 10),
)


def _mc_row(values: List[str]) -> str:
    return "  ".join(
        str(v).ljust(width) for (_, width), v in zip(_MC_COLUMNS, values)
    ).rstrip()


def format_multicore_report(result: MultiCoreCampaignResult) -> str:
    """The contention-campaign table plus totals, as written to
    ``benchmarks/results/multicore_campaign.txt``."""
    lines = [
        "SLPMT multi-core contention crash campaign",
        f"budget={result.budget} crash points per cell, seed={result.seed}, "
        f"ops/core={result.ops_per_core}, keys={result.num_keys}, "
        f"value_bytes={result.value_bytes}, "
        "config=stress (512B/1KB/8KB caches)",
        "",
        _mc_row([name for name, _ in _MC_COLUMNS]),
        _mc_row(["-" * min(w, 10) for _, w in _MC_COLUMNS]),
    ]
    for cell in result.cells:
        switch = f"{cell.switch_points_run}/{cell.switch_points_total}"
        if cell.exhaustive:
            switch += " all"
        lines.append(
            _mc_row(
                [
                    cell.cell.workload,
                    cell.cell.scheme,
                    cell.cell.cores,
                    f"{cell.cell.theta:g}",
                    switch,
                    cell.cases_run,
                    cell.conflicts,
                    cell.aborts,
                    cell.commits,
                    cell.cycles,
                    cell.pm_bytes,
                    len(cell.violations),
                ]
            )
        )
    exhaustive_cells = sum(1 for c in result.cells if c.exhaustive)
    lines += [
        "",
        f"cells: {len(result.cells)} "
        f"({exhaustive_cells} with exhaustive switch-point coverage)",
        f"cases: {result.total_cases}",
        f"violations: {len(result.violations)}",
    ]
    for violation in result.violations:
        lines.append(f"  VIOLATION {violation}")
    lines.append("")
    return "\n".join(lines)


_SVC_COLUMNS = (
    ("workload", 10),
    ("scheme", 7),
    ("batch", 5),
    ("reqs", 5),
    ("persist-pts", 12),
    ("instr-pts", 12),
    ("cases", 6),
    ("commits", 8),
    ("acked", 6),
    ("cycles", 9),
    ("pm-bytes", 9),
    ("steady-win", 11),
    ("kcyc", 6),
    ("violations", 10),
)


def _svc_row(values: List[str]) -> str:
    return "  ".join(
        str(v).ljust(width) for (_, width), v in zip(_SVC_COLUMNS, values)
    ).rstrip()


def format_service_report(result: ServiceCampaignResult) -> str:
    """The service-campaign table plus totals, as written to
    ``benchmarks/results/service_campaign.txt``."""
    lines = [
        "SLPMT transaction-service group-commit crash campaign",
        f"budget={result.budget} per cell, seed={result.seed}, "
        f"clients={result.num_clients}x{result.requests_per_client} requests, "
        f"value_bytes={result.value_bytes}, "
        "config=stress (512B/1KB/8KB caches)",
        "acceptance: every acked request durable; unacked requests absent "
        "or one whole in-flight batch",
        "",
        _svc_row([name for name, _ in _SVC_COLUMNS]),
        _svc_row(["-" * min(w, 10) for _, w in _SVC_COLUMNS]),
    ]
    for cell in result.cells:
        persist = f"{cell.persist_points_run}/{cell.persist_points_total}"
        if cell.exhaustive:
            persist += " all"
        instr = f"{cell.instr_points_run}/{cell.instr_points_total}"
        steady = f"{cell.window_lo}..{cell.window_hi}/{cell.windows}"
        if not cell.steady:
            steady += "!"
        lines.append(
            _svc_row(
                [
                    cell.cell.workload,
                    cell.cell.scheme,
                    cell.cell.batch_size,
                    cell.num_requests,
                    persist,
                    instr,
                    cell.cases_run,
                    cell.batches,
                    cell.acked,
                    cell.cycles,
                    cell.pm_bytes,
                    steady,
                    f"{cell.steady_kcyc:g}",
                    len(cell.violations),
                ]
            )
        )
    exhaustive_cells = sum(1 for c in result.cells if c.exhaustive)
    lines += [
        "",
        f"cells: {len(result.cells)} "
        f"({exhaustive_cells} with exhaustive durability-point coverage)",
        f"cases: {result.total_cases}",
        f"violations: {len(result.violations)}",
    ]
    for violation in result.violations:
        lines.append(f"  VIOLATION {violation}")
    lines.append("")
    return "\n".join(lines)
