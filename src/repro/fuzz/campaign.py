"""The crash-consistency fuzzing campaign driver.

A campaign sweeps a grid of *cells* — (workload × scheme ×
annotation-policy) — and for each cell crashes the same deterministic
operation sequence at many points:

* **durability-event points** (``crash_after_persists``): every WPQ
  insert is a potential crash point *inside* a commit sequence, exactly
  where the Figure-4 persist ordering matters.  For small op counts the
  driver enumerates every one of them (exhaustive); past the budget it
  samples from a seeded RNG.
* **instruction-boundary points**: sampled crash points between
  simulated memory instructions (the
  :class:`~repro.recovery.crashsim.InstructionLimit` checkpoint hook),
  covering mid-transaction volatile states that never reach the WPQ.

After each crash the machine recovers
(:func:`repro.recovery.engine.recover` plus the workload's own
recovery hook) and the durable image is checked three ways:

1. **structure** — the workload's integrity invariants;
2. **atomicity** — the durable logical state must be *exactly* one of
   two states: the committed prefix of the op sequence, or that prefix
   plus the in-flight operation (whose commit marker may have become
   durable before the crash reached the application);
3. **differential** — those two reference states come from a clean run
   of the **FG baseline** (no selective logging, no annotations), so any
   scheme/policy combination that diverges from FG's durable semantics
   is caught even if its state is self-consistent.

Everything is seeded and Date-free: the same ``(budget, seed)`` always
produces the identical campaign, which is what makes replay and
shrinking byte-for-byte reproducible.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import DEFAULT_CONFIG, CacheConfig, SystemConfig
from repro.common.errors import PowerFailure, RecoveryError, SimulationError
from repro.core.machine import Machine
from repro.core.schemes import scheme_by_name
from repro.fuzz.invariants import (
    InvariantViolation,
    State,
    Subject,
    durable_state,
    make_subject,
)
from repro.fuzz.oplog import OpLog
from repro.recovery.crashsim import InstructionLimit
from repro.recovery.engine import recover
from repro.runtime.hints import (
    COMPILER_DEFAULT,
    MANUAL,
    NO_ANNOTATIONS,
    AnnotationPolicy,
    Hint,
)
from repro.runtime.ptx import PTx
from repro.workloads import WORKLOADS

#: One op: ``[kind, key, value]`` — JSON-serialisable on purpose, so a
#: minimised reproducer round-trips through a file unchanged.
Op = List


# ----------------------------------------------------------------------
# annotation policies, including the deliberate §IV-A mis-annotation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _BuggyTombstonePolicy(AnnotationPolicy):
    """The Section IV-A hazard, on purpose.

    Treats tombstones like Pattern-1 new-allocation stores — log-free —
    instead of the correct lazy-but-logged combination.  The poisoned
    pre-existing node then persists in the LOGFREE_LINES commit phase
    *before* the commit marker, and a crash in that window rolls the
    transaction back around an already-clobbered node: the undo log has
    no pre-image to restore, so recovery resurrects a poisoned node.
    The campaign must catch this deterministically.
    """

    def flags(self, hint: Hint) -> Tuple[bool, bool]:
        if hint is Hint.TOMBSTONE:
            return (False, True)
        return super().flags(hint)


BUGGY_TOMBSTONE = _BuggyTombstonePolicy(
    name="manual-buggy-tombstone", honored=MANUAL.honored
)

#: Annotation policies addressable from cells and reproducer files.
POLICIES: Dict[str, AnnotationPolicy] = {
    "none": NO_ANNOTATIONS,
    "manual": MANUAL,
    "compiler": COMPILER_DEFAULT,
    "manual-buggy-tombstone": BUGGY_TOMBSTONE,
}


# ----------------------------------------------------------------------
# stress configuration: tiny caches force evictions, lazy-line drains,
# signature probes and WPQ pressure even at fuzz-sized op counts
# ----------------------------------------------------------------------

STRESS_CONFIG: SystemConfig = dataclasses.replace(
    DEFAULT_CONFIG,
    l1=CacheConfig(size_bytes=512, ways=2, latency_cycles=4),
    l2=CacheConfig(size_bytes=1024, ways=2, latency_cycles=12),
    l3=CacheConfig(size_bytes=8192, ways=4, latency_cycles=40),
)


# ----------------------------------------------------------------------
# cells and results
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzCell:
    """One (workload × scheme × annotation-policy) campaign cell."""

    workload: str
    scheme: str
    policy: str

    def __str__(self) -> str:
        return f"{self.workload}/{self.scheme}/{self.policy}"


#: All fuzzable subjects: the Table-II workloads plus the in-place table.
SUBJECTS: Tuple[str, ...] = tuple(WORKLOADS) + ("inplace",)

#: The default campaign grid: every subject under the FG baseline and
#: the three selective schemes the paper's soundness claim covers.
DEFAULT_CELLS: Tuple[FuzzCell, ...] = tuple(
    FuzzCell(workload, scheme, policy)
    for workload in SUBJECTS
    for scheme, policy in (
        ("FG", "none"),
        ("FG+LG", "manual"),
        ("FG+LZ", "manual"),
        ("SLPMT", "manual"),
    )
)


@dataclass
class Violation:
    """One invariant failure, with everything needed to reproduce it."""

    cell: FuzzCell
    crash_kind: str
    crash_point: int
    check: str
    message: str

    def __str__(self) -> str:
        return (
            f"{self.cell} @{self.crash_kind}:{self.crash_point} "
            f"[{self.check}] {self.message}"
        )


@dataclass
class CaseResult:
    """Outcome of one crash-inject-recover-check case."""

    crashed: bool
    committed_ops: int
    tx_commits: int
    violation: Optional[str] = None
    check: str = ""


@dataclass
class CellReport:
    """Coverage and outcome summary for one campaign cell."""

    cell: FuzzCell
    num_ops: int
    persist_points_total: int
    persist_points_run: int
    exhaustive: bool
    instr_points_total: int
    instr_points_run: int
    tx_commits: int
    #: Clean-run perf of the cell's op sequence (post-setup deltas from
    #: the dry run) — ties each cell's crash coverage to the cost of the
    #: execution it swept.
    cycles: int = 0
    pm_bytes: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def cases_run(self) -> int:
        return self.persist_points_run + self.instr_points_run


@dataclass
class CampaignResult:
    """A whole campaign: parameters plus every cell report."""

    budget: int
    seed: int
    num_ops: int
    value_bytes: int
    cells: List[CellReport] = field(default_factory=list)

    @property
    def total_cases(self) -> int:
        return sum(c.cases_run for c in self.cells)

    @property
    def violations(self) -> List[Violation]:
        return [v for c in self.cells for v in c.violations]


# ----------------------------------------------------------------------
# deterministic op generation
# ----------------------------------------------------------------------


def generate_ops(workload: str, num_ops: int, seed: int) -> List[Op]:
    """A deterministic op sequence for *workload*.

    The mix exercises every op kind the structure supports: fresh
    inserts, value-replacing re-inserts, removes of live keys, heap
    extracts, in-place slot updates and checkpoints.  Keys are drawn
    from a wide space so bucket/trie paths vary between seeds.
    """
    rng = random.Random(f"ops:{workload}:{seed}:{num_ops}")
    ops: List[Op] = []
    if workload == "inplace":
        for i in range(num_ops):
            if i > 0 and rng.random() < 0.1:
                ops.append(["checkpoint", 0, 0])
            else:
                ops.append(["update", rng.randrange(32), rng.randrange(1, 1 << 32)])
        return ops

    kinds = WORKLOADS[workload].fuzz_ops
    live: List[int] = []
    used = set()
    for _ in range(num_ops):
        r = rng.random()
        if "extract" in kinds and live and r < 0.35:
            ops.append(["extract", 0, 0])
            live.remove(max(live))
        elif "remove" in kinds and live and r < 0.35:
            key = rng.choice(live)
            ops.append(["remove", key, 0])
            live.remove(key)
        elif "remove" in kinds and live and r < 0.45:
            # Value-replacing re-insert of a live key.
            ops.append(["insert", rng.choice(live), 0])
        else:
            key = rng.randrange(1, 1 << 40)
            while key in used:
                key = rng.randrange(1, 1 << 40)
            used.add(key)
            ops.append(["insert", key, 0])
            live.append(key)
    return ops


def apply_op(subject: Subject, op: Op) -> None:
    """Apply one driver op to a live subject (one durable operation)."""
    kind, key, value = op[0], op[1], op[2]
    if kind == "insert":
        subject.insert(key)
    elif kind == "remove":
        subject.remove(key)
    elif kind == "extract":
        subject.extract_max()
    elif kind == "update":
        subject.update({key: value})
    elif kind == "checkpoint":
        subject.checkpoint()
    else:
        raise ValueError(f"unknown fuzz op kind {kind!r}")


# ----------------------------------------------------------------------
# case execution
# ----------------------------------------------------------------------


def _build(
    workload: str,
    scheme: str,
    policy: str,
    *,
    value_bytes: int,
    config: SystemConfig,
) -> Tuple[Machine, PTx, Subject]:
    machine = Machine(scheme_by_name(scheme), config)
    rt = PTx(machine, policy=POLICIES[policy])
    subject = make_subject(workload, rt, value_bytes=value_bytes)
    return machine, rt, subject


def baseline_states(
    workload: str,
    ops: Sequence[Op],
    *,
    value_bytes: int = 32,
    config: SystemConfig = STRESS_CONFIG,
) -> List[State]:
    """Durable logical state after every committed prefix of *ops*,
    measured on the FG baseline (every store logged and eagerly
    persisted), so ``states[k]`` is the reference for "k ops committed".
    """
    machine, _rt, subject = _build(
        workload, "FG", "none", value_bytes=value_bytes, config=config
    )
    states: List[State] = [durable_state(subject)]
    for op in ops:
        apply_op(subject, op)
        states.append(durable_state(subject))
    return states


def run_case(
    workload: str,
    scheme: str,
    policy: str,
    ops: Sequence[Op],
    crash_kind: str,
    crash_point: int,
    *,
    value_bytes: int = 32,
    config: SystemConfig = STRESS_CONFIG,
    baseline: Optional[List[State]] = None,
) -> CaseResult:
    """One crash-inject-recover-check experiment.

    ``crash_kind`` is ``"persist"`` (the *crash_point*-th post-setup
    durability event) or ``"instr"`` (the *crash_point*-th post-setup
    memory instruction).  *baseline* is the FG reference from
    :func:`baseline_states`; when omitted it is computed on the fly.
    """
    if baseline is None:
        baseline = baseline_states(
            workload, ops, value_bytes=value_bytes, config=config
        )
    machine, rt, subject = _build(
        workload, scheme, policy, value_bytes=value_bytes, config=config
    )
    oplog = OpLog()
    rt.op_log = oplog
    if crash_kind == "persist":
        machine.schedule_crash_after_persists(crash_point)
    elif crash_kind == "instr":
        machine.checkpoint = InstructionLimit(crash_point)
    else:
        raise ValueError(f"unknown crash kind {crash_kind!r}")

    committed = 0
    try:
        for i, op in enumerate(ops):
            oplog.begin_op(i)
            apply_op(subject, op)
            committed += 1
    except PowerFailure:
        machine.checkpoint = None
        machine.crash()
        recover(machine.pm, mode=machine.scheme.logging_mode, hooks=[subject])
        violation, check = _check_recovered(subject, baseline, committed, len(ops))
        return CaseResult(
            crashed=True,
            committed_ops=committed,
            tx_commits=oplog.total_commits,
            violation=violation,
            check=check,
        )

    machine.cancel_scheduled_crash()
    machine.checkpoint = None
    violation = None
    check = ""
    try:
        subject.verify()
    except RecoveryError as exc:
        violation, check = str(exc), "structure"
    return CaseResult(
        crashed=False,
        committed_ops=committed,
        tx_commits=oplog.total_commits,
        violation=violation,
        check=check,
    )


def _check_recovered(
    subject: Subject,
    baseline: List[State],
    committed: int,
    num_ops: int,
) -> Tuple[Optional[str], str]:
    """Structure + two-state atomicity/differential check.

    Returns ``(violation message, check name)``; ``(None, "")`` when the
    durable image is legal.
    """
    try:
        if hasattr(subject, "check_integrity"):
            subject.check_integrity(subject.reader(durable=True))
        state = durable_state(subject)
    except RecoveryError as exc:
        return str(exc), "structure"
    except SimulationError as exc:
        # Traversal followed a corrupt pointer into unmapped PM.
        return f"durable traversal failed: {exc}", "structure"
    except InvariantViolation as exc:
        return exc.message, exc.check

    acceptable = [baseline[committed]]
    if committed < num_ops:
        # The in-flight op's commit marker may have become durable just
        # before the crash reached the application: prefix+1 is legal.
        acceptable.append(baseline[committed + 1])
    if state in acceptable:
        return None, ""
    return _diagnose(state, baseline[committed])


def _diagnose(state: State, want: State) -> Tuple[str, str]:
    """Classify a state mismatch for the violation report."""
    got = dict(state)
    expect = dict(want)
    missing = sorted(k for k in expect if k not in got)
    if missing:
        return (
            f"committed key(s) {missing[:4]} missing from the durable state",
            "completeness",
        )
    extra = sorted(k for k in got if k not in expect)
    if extra:
        return (
            f"uncommitted/removed key(s) {extra[:4]} present in the durable state",
            "exactness",
        )
    wrong = sorted(k for k in expect if got.get(k) != expect[k])
    if wrong:
        return (
            f"key(s) {wrong[:4]} hold values diverging from the FG baseline",
            "differential",
        )
    return (
        "durable state diverges from the FG baseline (key multiplicity)",
        "differential",
    )


# ----------------------------------------------------------------------
# cell + campaign drivers
# ----------------------------------------------------------------------


def _cell_dry_run(
    cell: FuzzCell,
    ops: Sequence[Op],
    *,
    value_bytes: int,
    config: SystemConfig,
) -> Tuple[int, int, int, int, int]:
    """Clean run of *ops* in this cell: post-setup durability-event and
    instruction totals, committed-transaction count (coverage), and the
    sequence's cycle / PM-byte cost (perf context for the report)."""
    machine, rt, subject = _build(
        cell.workload, cell.scheme, cell.policy,
        value_bytes=value_bytes, config=config,
    )
    oplog = OpLog()
    rt.op_log = oplog
    events0 = machine.wpq.total_inserts
    instrs0 = machine.stats.instructions
    cycles0 = machine.now
    pm_bytes0 = machine.stats.pm_bytes_written
    for i, op in enumerate(ops):
        oplog.begin_op(i)
        apply_op(subject, op)
    return (
        machine.wpq.total_inserts - events0,
        machine.stats.instructions - instrs0,
        oplog.total_commits,
        machine.now - cycles0,
        machine.stats.pm_bytes_written - pm_bytes0,
    )


def run_cell(
    cell: FuzzCell,
    *,
    budget: int,
    seed: int,
    ops: Optional[Sequence[Op]] = None,
    num_ops: int = 10,
    value_bytes: int = 32,
    config: SystemConfig = STRESS_CONFIG,
    baseline: Optional[List[State]] = None,
    persist_budget: Optional[int] = None,
    instr_budget: Optional[int] = None,
) -> CellReport:
    """Run one cell's crash-point sweep under a per-cell case budget.

    Three quarters of the budget goes to durability-event points —
    exhaustively when they fit, sampled otherwise — and the remainder to
    sampled instruction-boundary points; *persist_budget* /
    *instr_budget* override the split (tests use this to force a purely
    exhaustive durability-event sweep).
    """
    if ops is None:
        ops = generate_ops(cell.workload, num_ops, seed)
    if baseline is None:
        baseline = baseline_states(
            cell.workload, ops, value_bytes=value_bytes, config=config
        )
    events, instrs, tx_commits, cell_cycles, cell_pm_bytes = _cell_dry_run(
        cell, ops, value_bytes=value_bytes, config=config
    )
    rng = random.Random(f"cell:{seed}:{cell.workload}:{cell.scheme}:{cell.policy}")

    if persist_budget is None:
        persist_budget = max(1, (budget * 3) // 4)
    if events <= persist_budget:
        persist_points = list(range(events))
        exhaustive = True
    else:
        persist_points = sorted(rng.sample(range(events), persist_budget))
        exhaustive = False
    if instr_budget is None:
        instr_budget = max(0, budget - len(persist_points))
    instr_points = sorted(rng.sample(range(instrs), min(instr_budget, instrs)))

    report = CellReport(
        cell=cell,
        num_ops=len(ops),
        persist_points_total=events,
        persist_points_run=len(persist_points),
        exhaustive=exhaustive,
        instr_points_total=instrs,
        instr_points_run=len(instr_points),
        tx_commits=tx_commits,
        cycles=cell_cycles,
        pm_bytes=cell_pm_bytes,
    )
    for kind, points in (("persist", persist_points), ("instr", instr_points)):
        for point in points:
            result = run_case(
                cell.workload, cell.scheme, cell.policy, ops, kind, point,
                value_bytes=value_bytes, config=config, baseline=baseline,
            )
            if result.violation is not None:
                report.violations.append(
                    Violation(
                        cell=cell,
                        crash_kind=kind,
                        crash_point=point,
                        check=result.check,
                        message=result.violation,
                    )
                )
    return report


def run_campaign(
    budget: int = 200,
    seed: int = 7,
    *,
    cells: Sequence[FuzzCell] = DEFAULT_CELLS,
    num_ops: int = 10,
    value_bytes: int = 32,
    config: SystemConfig = STRESS_CONFIG,
    jobs: int = 1,
    progress=None,
) -> CampaignResult:
    """Run the full campaign grid.

    *budget* is the per-cell case budget.  Ops and FG baselines are
    computed once per workload and shared by every cell of that
    workload, so all schemes crash the identical op sequence — that is
    what makes the differential column meaningful.

    *jobs* > 1 fans the cells out over worker processes through the
    parallel engine; each cell's RNG is derived from the cell identity
    alone, and the ordered merge keeps the report byte-identical to a
    serial campaign.
    """
    from repro.parallel import engine
    from repro.parallel.tasks import fuzz_cell

    result = CampaignResult(
        budget=budget, seed=seed, num_ops=num_ops, value_bytes=value_bytes
    )
    ops_cache: Dict[str, List[Op]] = {}
    baseline_cache: Dict[str, List[State]] = {}
    for cell in cells:
        if cell.workload not in ops_cache:
            ops_cache[cell.workload] = generate_ops(cell.workload, num_ops, seed)
            baseline_cache[cell.workload] = baseline_states(
                cell.workload,
                ops_cache[cell.workload],
                value_bytes=value_bytes,
                config=config,
            )
    descriptors = [
        {
            "cell": cell,
            "budget": budget,
            "seed": seed,
            "ops": ops_cache[cell.workload],
            "value_bytes": value_bytes,
            "config": config,
            "baseline": baseline_cache[cell.workload],
        }
        for cell in cells
    ]
    result.cells = engine.run_tasks(
        fuzz_cell,
        descriptors,
        jobs=jobs,
        labels=[str(cell) for cell in cells],
        progress=progress,
    )
    return result


# ----------------------------------------------------------------------
# multi-core contention campaign
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MultiCoreCell:
    """One (workload × scheme × cores × θ) contention-campaign cell."""

    workload: str
    scheme: str
    cores: int
    theta: float

    def __str__(self) -> str:
        return f"{self.workload}/{self.scheme}/c{self.cores}/t{self.theta:g}"


#: Schemes the contention campaign sweeps by default: the FG baseline,
#: lazy persistency (whose cross-core forcing is the paper's §III-C3
#: hazard surface) and the full SLPMT design.
MULTICORE_SCHEMES: Tuple[str, ...] = ("FG", "FG+LZ", "SLPMT")

#: Default contention grid: shared hashtable, N ∈ {1, 2, 4}, uniform
#: and hot-key skew.  N=1 keeps a no-contention control in every sweep.
DEFAULT_MULTICORE_CELLS: Tuple[MultiCoreCell, ...] = tuple(
    MultiCoreCell("hashtable", scheme, cores, theta)
    for scheme in MULTICORE_SCHEMES
    for cores in (1, 2, 4)
    for theta in (0.0, 0.9)
)


@dataclass
class MultiCoreCellReport:
    """Coverage and outcome summary for one contention cell."""

    cell: MultiCoreCell
    ops_per_core: int
    #: Turn switches in the clean run = the cell's interleaving points.
    switch_points_total: int
    switch_points_run: int
    exhaustive: bool
    #: Clean-run contention profile (determinism witnesses: byte-equal
    #: between serial and --jobs N sweeps, and across reruns).
    conflicts: int
    aborts: int
    commits: int
    cycles: int = 0
    pm_bytes: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def cases_run(self) -> int:
        return self.switch_points_run


@dataclass
class MultiCoreCampaignResult:
    """A whole contention campaign: parameters plus cell reports."""

    budget: int
    seed: int
    ops_per_core: int
    num_keys: int
    value_bytes: int
    cells: List[MultiCoreCellReport] = field(default_factory=list)

    @property
    def total_cases(self) -> int:
        return sum(c.cases_run for c in self.cells)

    @property
    def violations(self) -> List[Violation]:
        return [v for c in self.cells for v in c.violations]


def _build_contention(
    cell: MultiCoreCell,
    *,
    ops_per_core: int,
    num_keys: int,
    value_bytes: int,
    seed: int,
    config: SystemConfig,
):
    """A fresh system + subject + streams for one contention case."""
    from repro.multicore.system import MultiCoreSystem
    from repro.workloads.shared import generate_streams

    system = MultiCoreSystem(
        cell.cores, scheme_by_name(cell.scheme), config, seed=seed
    )
    subject = WORKLOADS[cell.workload](
        system.runtimes[0], value_bytes=value_bytes
    )
    streams = generate_streams(
        cell.cores,
        ops_per_core,
        theta=cell.theta,
        num_keys=num_keys,
        value_words=subject.value_words,
        seed=seed,
    )
    return system, subject, streams


def _check_multicore_recovered(
    subject: Subject,
    in_flight: "List",
) -> Tuple[Optional[str], str]:
    """Post-crash acceptance check for an N-core contention run.

    With N cores there can be up to N transactions in flight at the
    crash, so the single-core two-state check generalises to a state
    *family*: the durable image must equal the committed oracle plus
    **any subset** of the in-flight operations.  Concretely:

    * ``structure`` — the workload's own integrity invariants hold;
    * ``completeness`` — every committed key is durable, holding either
      its committed value or the value of an in-flight op on that key
      (whose commit marker may have become durable just before the
      crash unwound the worker);
    * ``exactness`` — every durable key is committed or in flight, and
      no key appears twice (a torn or resurrected node can never hide
      behind contention).

    The oracle is exact because it is updated inside the committing
    worker's scheduler turn, after ``run_atomically`` returns — commit
    order and oracle order coincide by construction.
    """
    try:
        if hasattr(subject, "check_integrity"):
            subject.check_integrity(subject.reader(durable=True))
        state = durable_state(subject)
    except RecoveryError as exc:
        return str(exc), "structure"
    except SimulationError as exc:
        return f"durable traversal failed: {exc}", "structure"
    except InvariantViolation as exc:
        return exc.message, exc.check

    committed = {k: tuple(v) for k, v in subject.expected.items()}
    pending: Dict[int, set] = {}
    for op in in_flight:
        if op is not None:
            pending.setdefault(op.key, set()).add(tuple(op.value))

    seen = set()
    for key, value in state:
        if key in seen:
            return f"key {key} appears twice in the durable structure", "exactness"
        seen.add(key)
        allowed = set()
        if key in committed:
            allowed.add(committed[key])
        allowed |= pending.get(key, set())
        if not allowed:
            return (
                f"uncommitted key {key} present in the durable state",
                "exactness",
            )
        if value not in allowed:
            return (
                f"key {key} holds a value that is neither its committed "
                f"nor any in-flight value",
                "completeness",
            )
    missing = sorted(k for k in committed if k not in seen)
    if missing:
        return (
            f"committed key(s) {missing[:4]} missing from the durable state",
            "completeness",
        )
    return None, ""


def run_multicore_case(
    cell: MultiCoreCell,
    crash_switch: int,
    *,
    ops_per_core: int,
    num_keys: int,
    value_bytes: int,
    seed: int,
    config: SystemConfig,
) -> CaseResult:
    """One contention crash case: run the cell's streams with a power
    failure armed at the *crash_switch*-th turn switch, recover the
    shared PM, and judge the durable image."""
    from repro.workloads.shared import replay_contention

    system, subject, streams = _build_contention(
        cell,
        ops_per_core=ops_per_core,
        num_keys=num_keys,
        value_bytes=value_bytes,
        seed=seed,
        config=config,
    )
    system.scheduler.crash_at_switch = crash_switch
    in_flight = replay_contention(system, subject, streams)
    crashed = system.scheduler.crashed
    if crashed:
        system.crash()
        recover(
            system.pm,
            mode=system.cores[0].scheme.logging_mode,
            hooks=[subject],
        )
        violation, check = _check_multicore_recovered(subject, in_flight)
    else:
        # The armed point lay beyond this run's switch count (can only
        # happen for caller-chosen points): a clean completion, judged
        # like one.
        system.fence_all()
        violation, check = None, ""
        try:
            subject.verify(durable=True)
        except RecoveryError as exc:
            violation, check = str(exc), "structure"
    return CaseResult(
        crashed=crashed,
        committed_ops=len(subject.expected),
        tx_commits=system.total_commits(),
        violation=violation,
        check=check,
    )


def run_multicore_cell(
    cell: MultiCoreCell,
    *,
    budget: int,
    seed: int,
    ops_per_core: int = 12,
    num_keys: int = 16,
    value_bytes: int = 32,
    config: SystemConfig = STRESS_CONFIG,
) -> MultiCoreCellReport:
    """Run one contention cell's crash-point sweep.

    A clean dry run measures the cell's interleaving-point count (the
    scheduler's ``switches`` total) and its contention profile; the
    sweep then crashes a fresh, identically seeded system at every
    switch when they fit the *budget*, or at a seeded sample otherwise.
    Everything derives from ``(cell, seed)``, so the report is
    byte-identical between serial and parallel campaigns.
    """
    from repro.workloads.shared import replay_contention

    system, subject, streams = _build_contention(
        cell,
        ops_per_core=ops_per_core,
        num_keys=num_keys,
        value_bytes=value_bytes,
        seed=seed,
        config=config,
    )
    cycles0 = sum(core.now for core in system.cores)
    pm0 = system.merged_stats().pm_bytes_written
    replay_contention(system, subject, streams)
    system.fence_all()
    subject.verify(durable=True)
    stats = system.merged_stats()
    switches = system.scheduler.switches

    rng = random.Random(f"mc:{seed}:{cell}")
    # Switch 1 is the pre-run turn draw; crashing there still exercises
    # the all-volatile-lost path, so the range starts at 1.
    if switches <= budget:
        points = list(range(1, switches + 1))
        exhaustive = True
    else:
        points = sorted(rng.sample(range(1, switches + 1), budget))
        exhaustive = False

    report = MultiCoreCellReport(
        cell=cell,
        ops_per_core=ops_per_core,
        switch_points_total=switches,
        switch_points_run=len(points),
        exhaustive=exhaustive,
        conflicts=system.conflicts,
        aborts=stats.aborts,
        commits=stats.commits,
        cycles=sum(core.now for core in system.cores) - cycles0,
        pm_bytes=stats.pm_bytes_written - pm0,
    )
    for point in points:
        result = run_multicore_case(
            cell,
            point,
            ops_per_core=ops_per_core,
            num_keys=num_keys,
            value_bytes=value_bytes,
            seed=seed,
            config=config,
        )
        if result.violation is not None:
            report.violations.append(
                Violation(
                    cell=cell,
                    crash_kind="switch",
                    crash_point=point,
                    check=result.check,
                    message=result.violation,
                )
            )
    return report


def run_multicore_campaign(
    budget: int = 60,
    seed: int = 7,
    *,
    cells: Sequence[MultiCoreCell] = DEFAULT_MULTICORE_CELLS,
    ops_per_core: int = 12,
    num_keys: int = 16,
    value_bytes: int = 32,
    config: SystemConfig = STRESS_CONFIG,
    jobs: int = 1,
    progress=None,
) -> MultiCoreCampaignResult:
    """Run the contention campaign grid.

    *budget* is the per-cell crash-point budget.  Cells are keyed by
    ``(workload, scheme, cores, θ, seed)`` alone — each worker process
    rebuilds its whole scenario from those scalars, and the ordered
    merge keeps the campaign byte-identical to a serial run.
    """
    from repro.parallel import engine
    from repro.parallel.tasks import multicore_fuzz_cell

    result = MultiCoreCampaignResult(
        budget=budget,
        seed=seed,
        ops_per_core=ops_per_core,
        num_keys=num_keys,
        value_bytes=value_bytes,
    )
    descriptors = [
        {
            "cell": cell,
            "budget": budget,
            "seed": seed,
            "ops_per_core": ops_per_core,
            "num_keys": num_keys,
            "value_bytes": value_bytes,
            "config": config,
        }
        for cell in cells
    ]
    result.cells = engine.run_tasks(
        multicore_fuzz_cell,
        descriptors,
        jobs=jobs,
        labels=[str(cell) for cell in cells],
        progress=progress,
    )
    return result

# ----------------------------------------------------------------------
# transaction-service campaign (group-commit durability)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceCell:
    """One (workload × scheme × group-commit batch size) service cell.

    ``locking`` routes write batches through the wound-wait lock
    manager with round-robin batch fill — the multi-structure
    configuration the composite workloads exercise.  The trailing
    defaults keep :class:`~repro.fuzz.minimize.Reproducer` replay
    (which rebuilds ``ServiceCell(workload, scheme, batch_size)``)
    working unchanged.
    """

    workload: str
    scheme: str
    batch_size: int
    locking: bool = False

    def __str__(self) -> str:
        suffix = "+lk" if self.locking else ""
        return f"svc/{self.workload}/{self.scheme}/b{self.batch_size}{suffix}"


#: Schemes the service campaign sweeps by default: the FG baseline and
#: the full design.
SERVICE_SCHEMES: Tuple[str, ...] = ("FG", "SLPMT")

#: Default service campaign grid: each scheme with and without group
#: commit over the hashtable (the structure whose O(1) paths keep
#: per-case cost low enough for exhaustive durability-event sweeps),
#: plus the composite multi-structure workload behind the wound-wait
#: lock manager — every ``multistruct`` insert spans map, queue and
#: counter, so these cells prove cross-structure atomicity through the
#: lock manager at every crash point.
DEFAULT_SERVICE_CELLS: Tuple[ServiceCell, ...] = tuple(
    ServiceCell("hashtable", scheme, batch)
    for scheme in SERVICE_SCHEMES
    for batch in (1, 8)
) + tuple(
    ServiceCell("multistruct", scheme, 8, locking=True)
    for scheme in SERVICE_SCHEMES
)

#: Service campaign traffic: write-heavy with multi-key transactions so
#: a group commit's all-or-nothing set spans clients and keys.
SERVICE_FUZZ_MIX: Dict[str, float] = {
    "put": 0.65,
    "get": 0.15,
    "scan": 0.05,
    "txn": 0.15,
}


@dataclass
class ServiceCellReport:
    """Coverage and outcome summary for one service cell."""

    cell: ServiceCell
    num_requests: int
    persist_points_total: int
    persist_points_run: int
    exhaustive: bool
    instr_points_total: int
    instr_points_run: int
    #: Clean-run service profile (determinism witnesses).
    batches: int
    acked: int
    cycles: int = 0
    pm_bytes: int = 0
    #: Clean-run windowed telemetry: steady-state detection over the
    #: acked-per-window series (see :mod:`repro.obs.steady`).
    windows: int = 0
    steady: bool = False
    window_lo: int = 0
    window_hi: int = 0
    steady_kcyc: float = 0.0
    violations: List[Violation] = field(default_factory=list)

    @property
    def cases_run(self) -> int:
        return self.persist_points_run + self.instr_points_run


@dataclass
class ServiceCampaignResult:
    """A whole service campaign: parameters plus cell reports."""

    budget: int
    seed: int
    num_clients: int
    requests_per_client: int
    value_bytes: int
    cells: List[ServiceCellReport] = field(default_factory=list)

    @property
    def total_cases(self) -> int:
        return sum(c.cases_run for c in self.cells)

    @property
    def violations(self) -> List[Violation]:
        return [v for c in self.cells for v in c.violations]


def _build_service(
    cell: ServiceCell,
    *,
    num_clients: int,
    requests_per_client: int,
    value_bytes: int,
    seed: int,
    config: SystemConfig,
    telemetry=None,
    duration_cycles: Optional[int] = None,
):
    """A fresh transaction service for one campaign case.

    ``block`` admission so every request eventually commits (maximum
    durability surface), open-loop arrivals fast enough to keep batches
    full, and ``verify=False`` — the campaign applies its own two-state
    acceptance check instead of the clean-run verify.  Locking cells
    route batches through the wound-wait lock manager with round-robin
    batch fill (the fill order the lock manager's deferral re-queueing
    is designed against)."""
    from repro.service.admission import AdmissionPolicy
    from repro.service.server import ServiceConfig, TransactionService
    from repro.service.tm import GroupCommitPolicy

    return TransactionService(
        ServiceConfig(
            workload=cell.workload,
            scheme=cell.scheme,
            num_clients=num_clients,
            requests_per_client=requests_per_client,
            value_bytes=value_bytes,
            num_keys=24,
            theta=0.6,
            mix=dict(SERVICE_FUZZ_MIX),
            arrival_cycles=600,
            batch=GroupCommitPolicy(batch_size=cell.batch_size),
            admission=AdmissionPolicy(
                max_depth=64,
                mode="block",
                fairness="round-robin" if cell.locking else "fifo",
            ),
            seed=seed,
            verify=False,
            locking=cell.locking,
            duration_cycles=duration_cycles,
        ),
        config=config,
        telemetry=telemetry,
    )


def _check_service_recovered(svc) -> Tuple[Optional[str], str]:
    """Post-crash acceptance check for a transaction-service run.

    The service's durability contract is judged against its *committed
    oracle* (every acknowledged write, folded in at group commit) and
    the in-flight batch:

    * ``structure`` — the workload's integrity invariants hold;
    * **ack ⇒ durable** — the durable logical state contains every
      acknowledged write's exact effect (the oracle state);
    * **atomicity** — the only other legal image is the oracle plus the
      *entire* in-flight batch applied in batch order: its commit marker
      may have become durable immediately before the crash surfaced.
      A partial batch — some requests' effects durable, others' not —
      is a violation, as is any unacknowledged effect outside the
      in-flight batch.
    """
    subject = svc.subject
    try:
        if hasattr(subject, "check_integrity"):
            subject.check_integrity(subject.reader(durable=True))
        state = durable_state(subject)
    except RecoveryError as exc:
        return str(exc), "structure"
    except SimulationError as exc:
        return f"durable traversal failed: {exc}", "structure"
    except InvariantViolation as exc:
        return exc.message, exc.check

    committed = {k: tuple(v) for k, v in svc.rm.committed.items()}
    acceptable = [tuple(sorted(committed.items()))]
    if svc.inflight:
        after = dict(committed)
        for request in svc.inflight:
            for key, value in zip(request.keys, request.values):
                after[key] = tuple(value)
        acceptable.append(tuple(sorted(after.items())))
    if state not in acceptable:
        return _diagnose(state, acceptable[0])

    # Cross-structure atomicity: on composite subjects the durable
    # queue chain and event counter must land on the same side of the
    # commit boundary as the map image — the acknowledged chain (queue
    # facet order) or that plus the whole in-flight batch, never a mix.
    if hasattr(subject, "queue_keys") and "queue" in getattr(
        svc.rm, "structures", {}
    ):
        read = subject.reader(durable=True)
        try:
            chain = tuple(subject.queue_keys(read))
            counter = subject.counter_value(read)
        except SimulationError as exc:
            return f"durable queue traversal failed: {exc}", "xstructure"
        acked_chain = tuple(svc.rm.structures["queue"].order)
        legal_chains = [acked_chain]
        if svc.inflight:
            legal_chains.append(
                acked_chain
                + tuple(k for r in svc.inflight for k in r.keys)
            )
        if chain not in legal_chains:
            return (
                f"durable queue chain ({len(chain)} nodes) matches "
                f"neither the acked chain ({len(acked_chain)}) nor "
                f"acked+inflight ({len(legal_chains[-1])})",
                "xstructure",
            )
        if counter != len(chain):
            return (
                f"durable counter {counter} != queue chain length "
                f"{len(chain)}",
                "xstructure",
            )
    return None, ""


def run_service_case(
    cell: ServiceCell,
    crash_kind: str,
    crash_point: int,
    *,
    num_clients: int = 5,
    requests_per_client: int = 16,
    value_bytes: int = 32,
    seed: int = 7,
    config: SystemConfig = STRESS_CONFIG,
    duration_cycles: Optional[int] = None,
) -> CaseResult:
    """One service crash case: serve with a power failure armed at the
    *crash_point*-th post-setup durability event (``"persist"``) or
    memory instruction (``"instr"``), recover, and judge the durable
    image against the acknowledgement oracle."""
    svc = _build_service(
        cell,
        num_clients=num_clients,
        requests_per_client=requests_per_client,
        value_bytes=value_bytes,
        seed=seed,
        config=config,
        duration_cycles=duration_cycles,
    )
    machine = svc.machine
    if crash_kind == "persist":
        machine.schedule_crash_after_persists(crash_point)
    elif crash_kind == "instr":
        machine.checkpoint = InstructionLimit(crash_point)
    else:
        raise ValueError(f"unknown crash kind {crash_kind!r}")

    try:
        svc.serve()
    except PowerFailure:
        machine.checkpoint = None
        machine.crash()
        recover(
            machine.pm, mode=machine.scheme.logging_mode, hooks=[svc.subject]
        )
        violation, check = _check_service_recovered(svc)
        return CaseResult(
            crashed=True,
            committed_ops=len(svc.rm.committed),
            tx_commits=svc.tm.commits,
            violation=violation,
            check=check,
        )

    # The armed point lay beyond this run's count (caller-chosen points
    # only): finish cleanly and judge like a clean run.
    machine.cancel_scheduled_crash()
    machine.checkpoint = None
    violation, check = None, ""
    try:
        svc.finish()
        svc.rm.sync_expected()
        svc.subject.verify(durable=True)
    except RecoveryError as exc:
        violation, check = str(exc), "structure"
    return CaseResult(
        crashed=False,
        committed_ops=len(svc.rm.committed),
        tx_commits=svc.tm.commits,
        violation=violation,
        check=check,
    )


def run_service_cell(
    cell: ServiceCell,
    *,
    budget: int,
    seed: int,
    num_clients: int = 5,
    requests_per_client: int = 16,
    value_bytes: int = 32,
    config: SystemConfig = STRESS_CONFIG,
    duration_cycles: Optional[int] = None,
) -> ServiceCellReport:
    """Run one service cell's crash-point sweep.

    A clean dry run of the identical service measures its post-setup
    durability-event and instruction counts; the sweep then crashes a
    fresh, identically seeded service at each point — exhaustively over
    durability events when they fit three quarters of *budget*, sampled
    otherwise, with the remainder spent on sampled instruction
    boundaries.  Everything derives from ``(cell, seed)``.

    The clean run also carries a windowed telemetry registry (passive,
    so the crash points it derives are unaffected); its steady-state
    summary lands in the report — a campaign cell quoting cycles from a
    run that never settled says so in the table.
    """
    from repro.obs.steady import steady_summary
    from repro.obs.telemetry import TelemetryWindows

    fine = TelemetryWindows(window_cycles=1024)
    svc = _build_service(
        cell,
        num_clients=num_clients,
        requests_per_client=requests_per_client,
        value_bytes=value_bytes,
        seed=seed,
        config=config,
        telemetry=fine,
        duration_cycles=duration_cycles,
    )
    events0 = svc.machine.wpq.total_inserts
    instrs0 = svc.machine.stats.instructions
    cycles0 = svc.machine.now
    pm0 = svc.machine.stats.pm_bytes_written
    svc.serve()
    events = svc.machine.wpq.total_inserts - events0
    instrs = svc.machine.stats.instructions - instrs0
    clean = svc.result()
    # Clean-run sanity: the service's own fence + verify must pass
    # before any crash case of this cell is trusted.
    svc.finish()
    svc.rm.sync_expected()
    svc.subject.verify(durable=True)

    rng = random.Random(f"svc-cell:{seed}:{cell}")
    persist_budget = max(1, (budget * 3) // 4)
    if events <= persist_budget:
        persist_points = list(range(events))
        exhaustive = True
    else:
        persist_points = sorted(rng.sample(range(events), persist_budget))
        exhaustive = False
    instr_budget = max(0, budget - len(persist_points))
    instr_points = sorted(rng.sample(range(instrs), min(instr_budget, instrs)))

    telemetry = fine.rebinned(max(1, fine.num_windows // 8))
    steady = steady_summary(telemetry)
    report = ServiceCellReport(
        cell=cell,
        num_requests=clean.requests,
        persist_points_total=events,
        persist_points_run=len(persist_points),
        exhaustive=exhaustive,
        instr_points_total=instrs,
        instr_points_run=len(instr_points),
        batches=clean.batches,
        acked=clean.acked,
        cycles=svc.machine.now - cycles0,
        pm_bytes=svc.machine.stats.pm_bytes_written - pm0,
        windows=steady["windows_total"],
        steady=steady["steady"],
        window_lo=steady["window_lo"],
        window_hi=steady["window_hi"],
        steady_kcyc=steady["throughput_kcyc"],
    )
    for kind, points in (("persist", persist_points), ("instr", instr_points)):
        for point in points:
            result = run_service_case(
                cell,
                kind,
                point,
                num_clients=num_clients,
                requests_per_client=requests_per_client,
                value_bytes=value_bytes,
                seed=seed,
                config=config,
                duration_cycles=duration_cycles,
            )
            if result.violation is not None:
                report.violations.append(
                    Violation(
                        cell=cell,
                        crash_kind=kind,
                        crash_point=point,
                        check=result.check,
                        message=result.violation,
                    )
                )
    return report


def run_service_campaign(
    budget: int = 150,
    seed: int = 7,
    *,
    cells: Sequence[ServiceCell] = DEFAULT_SERVICE_CELLS,
    num_clients: int = 5,
    requests_per_client: int = 16,
    value_bytes: int = 32,
    config: SystemConfig = STRESS_CONFIG,
    duration_cycles: Optional[int] = None,
    jobs: int = 1,
    progress=None,
) -> ServiceCampaignResult:
    """Run the transaction-service campaign grid.

    *budget* is the per-cell case budget.  Cells are keyed by
    ``(cell, seed)`` alone — each worker process rebuilds the whole
    service from those scalars, and the ordered merge keeps the report
    byte-identical to a serial campaign.
    """
    from repro.parallel import engine
    from repro.parallel.tasks import service_fuzz_cell

    result = ServiceCampaignResult(
        budget=budget,
        seed=seed,
        num_clients=num_clients,
        requests_per_client=requests_per_client,
        value_bytes=value_bytes,
    )
    descriptors = [
        {
            "cell": cell,
            "budget": budget,
            "seed": seed,
            "num_clients": num_clients,
            "requests_per_client": requests_per_client,
            "value_bytes": value_bytes,
            "config": config,
            "duration_cycles": duration_cycles,
        }
        for cell in cells
    ]
    result.cells = engine.run_tasks(
        service_fuzz_cell,
        descriptors,
        jobs=jobs,
        labels=[str(cell) for cell in cells],
        progress=progress,
    )
    return result
