"""Media-fault injection campaign: torn tails, bit flips, dropped drains.

The crash campaign (:mod:`repro.fuzz.campaign`) assumes the media is
honest — a crash loses volatile state but every durable word survives
intact.  This driver removes that assumption.  Each *fault cell* is a
(workload × scheme × fault-kind) triple, and every case runs the cell's
deterministic op sequence with one planned media fault from
:mod:`repro.faults`:

* ``torn-tail`` — the in-flight log append is cut at a word boundary;
  the sweep is **exhaustive**: every word-boundary cut of every op-phase
  append, including the zero-cut (append lost) and the full-cut
  (no-damage control) coordinates;
* ``bit-flip`` — one seeded-random bit of one op-phase append flips the
  moment the entry reaches media, then the power dies;
* ``drop-drains`` — the machine crashes at a sampled durability event
  and the last N WPQ drains are reverted (a broken ADR energy reserve),
  rewinding the media to an earlier durability boundary.

After injection, every case is judged twice:

1. **strict probe** (on a snapshot, no hooks): ``recover(policy=
   "strict")`` must raise a typed error *iff* the media is damaged —
   a silent pass over damage, or a spurious raise over a clean log, is
   a violation.  For bit flips, the damage must be *detected* at all
   (CRC-32 catches every single-bit error by construction; an escape
   means the codec is broken).
2. **salvage recovery** (real image, workload hooks): ``recover(policy=
   "salvage")`` must produce a durable state consistent with the FG
   baseline — the two-state oracle for in-flight damage, the
   committed-prefix family for dropped drains — and must disclose the
   damage in its report.

Everything is seeded and Date-free, so a ``(seed, ops)`` pair replays
byte-for-byte; violations serialize through the PR-1 reproducer/minimizer
with a ``fault`` field carrying the exact injection coordinates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import (
    LogChecksumError,
    PowerFailure,
    RecoveryError,
    SimulationError,
    TornLogError,
)
from repro.faults import BitFlip, DropDrains, FaultModel, TornAppend
from repro.faults.model import tear_points
from repro.fuzz.campaign import (
    STRESS_CONFIG,
    SUBJECTS,
    CaseResult,
    Op,
    _build,
    apply_op,
    baseline_states,
    generate_ops,
    _check_recovered,
)
from repro.fuzz.invariants import InvariantViolation, State, durable_state
from repro.fuzz.oplog import OpLog
from repro.recovery.engine import recover

#: Scheme grid of the default fault campaign: the full design under both
#: logging disciplines (":redo" resolves via the scheme-name suffix).
DEFAULT_FAULT_SCHEMES: Tuple[str, ...] = ("SLPMT", "SLPMT:redo")

#: Annotation policy used by every fault cell (same as the SLPMT crash
#: cells; the in-place table ignores it).
FAULT_POLICY = "manual"

#: Drop-drain depth sweep: how many trailing durability groups vanish.
DROP_COUNTS: Tuple[int, ...] = (1, 2, 3)


@dataclass(frozen=True)
class FaultCell:
    """One (workload × scheme × fault-kind) campaign cell."""

    workload: str
    scheme: str
    fault_kind: str

    def __str__(self) -> str:
        return f"{self.workload}/{self.scheme}/{self.fault_kind}"


@dataclass
class FaultViolation:
    """One fault-campaign failure with its injection coordinates."""

    cell: FaultCell
    fault: Dict
    check: str
    message: str

    def __str__(self) -> str:
        return f"{self.cell} @{self.fault} [{self.check}] {self.message}"


@dataclass
class FaultCellReport:
    """Coverage and outcome for one fault cell."""

    cell: FaultCell
    num_ops: int
    appends: int
    cases_run: int
    exhaustive: bool
    fired: int
    salvaged_txs: int
    violations: List[FaultViolation] = field(default_factory=list)


@dataclass
class FaultCampaignResult:
    """A whole fault campaign: parameters plus every cell report."""

    budget: int
    seed: int
    num_ops: int
    value_bytes: int
    cells: List[FaultCellReport] = field(default_factory=list)

    @property
    def total_cases(self) -> int:
        return sum(c.cases_run for c in self.cells)

    @property
    def violations(self) -> List[FaultViolation]:
        return [v for c in self.cells for v in c.violations]


# ----------------------------------------------------------------------
# wire layout (dry run)
# ----------------------------------------------------------------------


def wire_layout(
    workload: str,
    scheme: str,
    policy: str,
    ops: Sequence[Op],
    *,
    value_bytes: int = 32,
    config: SystemConfig = STRESS_CONFIG,
) -> Tuple[int, List[int], int]:
    """Clean dry run of *ops*: returns ``(first_op_append, wire word
    count of every op-phase append, post-setup durability events)``.

    Fault coordinates address the global append clock, so the campaign
    tears/flips only op-phase appends (index ``first_op_append`` on) —
    setup crashes are the plain crash campaign's territory.
    """
    machine, rt, subject = _build(
        workload, scheme, policy, value_bytes=value_bytes, config=config
    )
    append0 = machine.pm.log_appends
    events0 = machine.wpq.total_inserts
    for op in ops:
        apply_op(subject, op)
    lengths = [e.nwords for e in machine.pm.log_extents[append0:]]
    return append0, lengths, machine.wpq.total_inserts - events0


# ----------------------------------------------------------------------
# one fault case
# ----------------------------------------------------------------------


def _plan_from_fault(fault: Dict):
    kind = fault["kind"]
    if kind == "torn-tail":
        return FaultModel(TornAppend(fault["append"], fault["cut"]))
    if kind == "bit-flip":
        return FaultModel(BitFlip(fault["append"], fault["word"], fault["bit"]))
    if kind == "drop-drains":
        return FaultModel(DropDrains(fault["count"]))
    raise SimulationError(f"unknown fault kind {kind!r}")


def run_fault_case(
    workload: str,
    scheme: str,
    policy: str,
    ops: Sequence[Op],
    fault: Dict,
    *,
    value_bytes: int = 32,
    config: SystemConfig = STRESS_CONFIG,
    baseline: Optional[List[State]] = None,
) -> CaseResult:
    """One inject-crash-recover-check experiment.

    *fault* is the JSON-serialisable coordinate dict a reproducer
    carries: ``{"kind": "torn-tail", "append": i, "cut": c}``,
    ``{"kind": "bit-flip", "append": i, "word": w, "bit": b}`` or
    ``{"kind": "drop-drains", "crash_point": p, "count": n}``.
    """
    if baseline is None:
        baseline = baseline_states(
            workload, ops, value_bytes=value_bytes, config=config
        )
    machine, rt, subject = _build(
        workload, scheme, policy, value_bytes=value_bytes, config=config
    )
    oplog = OpLog()
    rt.op_log = oplog
    model = _plan_from_fault(fault)
    machine.pm.fault_model = model
    if fault["kind"] == "drop-drains":
        machine.pm.arm_journal()
        machine.schedule_crash_after_persists(fault["crash_point"])

    committed = 0
    crashed = False
    try:
        for i, op in enumerate(ops):
            oplog.begin_op(i)
            apply_op(subject, op)
            committed += 1
    except PowerFailure:
        crashed = True

    if not crashed:
        # The plan never fired (coordinates past the run's end): a clean
        # completion, verified like any non-crash case.
        machine.cancel_scheduled_crash()
        machine.pm.fault_model = None
        violation = None
        check = ""
        try:
            subject.verify()
        except RecoveryError as exc:
            violation, check = str(exc), "structure"
        return CaseResult(
            crashed=False,
            committed_ops=committed,
            tx_commits=oplog.total_commits,
            violation=violation,
            check=check,
        )

    machine.checkpoint = None
    machine.crash()
    machine.pm.fault_model = None
    model.apply_post_crash(machine.pm)

    violation, check = _judge_recovery(
        machine, subject, fault, model, baseline, committed, len(ops)
    )
    return CaseResult(
        crashed=True,
        committed_ops=committed,
        tx_commits=oplog.total_commits,
        violation=violation,
        check=check,
    )


def _judge_recovery(
    machine,
    subject,
    fault: Dict,
    model: FaultModel,
    baseline: List[State],
    committed: int,
    num_ops: int,
) -> Tuple[Optional[str], str]:
    """The double judgement described in the module docstring."""
    pm = machine.pm
    mode = machine.scheme.logging_mode
    parsed = pm.parse_byte_log_tolerant()
    damaged = not parsed.clean

    # Detection: whenever the injection actually damaged the media (the
    # structural damage ledger is the ground truth — a zero-cut tear and
    # a full-cut tear leave it empty on purpose), the tolerant byte
    # parse must see it too.  A fired bit flip that parses clean is a
    # CRC escape; a fired partial tear that parses clean is a framing
    # bug.  Either way the checksummed wire format failed its one job.
    if pm.log_damage and not damaged:
        return (
            f"media damage escaped the tolerant parse ({fault})",
            "detection",
        )

    # Strict probe, on a snapshot so the real image stays recoverable.
    strict_err: Optional[RecoveryError] = None
    try:
        recover(pm.snapshot(), mode=mode, from_bytes=True, policy="strict")
    except (TornLogError, LogChecksumError) as err:
        strict_err = err
    if damaged and strict_err is None:
        return (
            "strict recovery silently accepted a damaged log",
            "strict",
        )
    if not damaged and strict_err is not None:
        return (
            f"strict recovery rejected an undamaged log: {strict_err}",
            "strict",
        )

    # Salvage recovery on the real image, with the workload's hooks —
    # from the byte stream, the view a real post-crash controller has
    # (it also makes the full-cut control entry visible: the append
    # completed on media even though the crash beat the bookkeeping).
    try:
        report = recover(
            pm, mode=mode, hooks=[subject], from_bytes=True, policy="salvage"
        )
    except RecoveryError as exc:
        return f"salvage recovery failed: {exc}", "salvage"
    if damaged and not report.damaged:
        return (
            "salvage recovery did not disclose the media damage",
            "report",
        )

    if fault["kind"] == "drop-drains":
        return _check_prefix_family(subject, baseline, committed)
    return _check_recovered(subject, baseline, committed, num_ops)


def _check_prefix_family(
    subject, baseline: List[State], committed: int
) -> Tuple[Optional[str], str]:
    """Dropped drains rewind the media to an earlier durability event,
    so recovery must land on *some* committed prefix — at most
    ``committed + 1`` (in-flight marker already durable), possibly far
    earlier (a dropped commit-marker drain un-commits its transaction)."""
    try:
        if hasattr(subject, "check_integrity"):
            subject.check_integrity(subject.reader(durable=True))
        state = durable_state(subject)
    except RecoveryError as exc:
        return str(exc), "structure"
    except SimulationError as exc:
        return f"durable traversal failed: {exc}", "structure"
    except InvariantViolation as exc:
        return exc.message, exc.check
    top = min(committed + 1, len(baseline) - 1)
    if any(state == baseline[k] for k in range(top + 1)):
        return None, ""
    return (
        "durable state after dropped drains matches no committed prefix",
        "prefix",
    )


# ----------------------------------------------------------------------
# cell + campaign drivers
# ----------------------------------------------------------------------


def _case_fault_list(
    cell: FaultCell,
    *,
    budget: int,
    seed: int,
    append0: int,
    lengths: List[int],
    events: int,
) -> Tuple[List[Dict], bool]:
    """The cell's fault coordinates and whether they are exhaustive.

    Torn tails always enumerate every word-boundary cut of every
    op-phase append; bit flips and dropped drains sample *budget*
    coordinates from the cell's seeded RNG.
    """
    if cell.fault_kind == "torn-tail":
        return (
            [
                {"kind": "torn-tail", "append": append0 + i, "cut": cut}
                for i, cut in tear_points(lengths)
            ],
            True,
        )
    if cell.fault_kind == "bit-flip":
        model = FaultModel(seed=seed)
        seen = set()
        faults: List[Dict] = []
        total_bits = sum(lengths) * 64
        for case in range(max(budget * 3, budget)):
            if len(faults) >= min(budget, total_bits):
                break
            flip = model.choose_flip(lengths, case=f"{cell}:{case}")
            if flip is None:
                break
            coord = (flip.append_index, flip.word, flip.bit)
            if coord in seen:
                continue
            seen.add(coord)
            faults.append(
                {
                    "kind": "bit-flip",
                    "append": append0 + flip.append_index,
                    "word": flip.word,
                    "bit": flip.bit,
                }
            )
        return faults, False
    if cell.fault_kind == "drop-drains":
        rng = random.Random(f"drop:{seed}:{cell.workload}:{cell.scheme}")
        faults = []
        points = list(range(events))
        rng.shuffle(points)
        for point in points[: max(1, budget // len(DROP_COUNTS))]:
            for count in DROP_COUNTS:
                faults.append(
                    {"kind": "drop-drains", "crash_point": point, "count": count}
                )
        return faults[:budget] if budget < len(faults) else faults, False
    raise SimulationError(f"unknown fault kind {cell.fault_kind!r}")


def run_fault_cell(
    cell: FaultCell,
    *,
    budget: int,
    seed: int,
    ops: Optional[Sequence[Op]] = None,
    num_ops: int = 10,
    value_bytes: int = 32,
    config: SystemConfig = STRESS_CONFIG,
    baseline: Optional[List[State]] = None,
) -> FaultCellReport:
    """Run one fault cell's sweep."""
    if ops is None:
        ops = generate_ops(cell.workload, num_ops, seed)
    if baseline is None:
        baseline = baseline_states(
            cell.workload, ops, value_bytes=value_bytes, config=config
        )
    append0, lengths, events = wire_layout(
        cell.workload, cell.scheme, FAULT_POLICY, ops,
        value_bytes=value_bytes, config=config,
    )
    faults, exhaustive = _case_fault_list(
        cell, budget=budget, seed=seed,
        append0=append0, lengths=lengths, events=events,
    )
    report = FaultCellReport(
        cell=cell,
        num_ops=len(ops),
        appends=len(lengths),
        cases_run=0,
        exhaustive=exhaustive,
        fired=0,
        salvaged_txs=0,
    )
    for fault in faults:
        result = run_fault_case(
            cell.workload, cell.scheme, FAULT_POLICY, ops, fault,
            value_bytes=value_bytes, config=config, baseline=baseline,
        )
        report.cases_run += 1
        if result.crashed:
            report.fired += 1
        if result.violation is not None:
            report.violations.append(
                FaultViolation(
                    cell=cell,
                    fault=fault,
                    check=result.check,
                    message=result.violation,
                )
            )
    return report


def default_fault_cells(
    *,
    subjects: Sequence[str] = SUBJECTS,
    schemes: Sequence[str] = DEFAULT_FAULT_SCHEMES,
    kinds: Sequence[str] = ("torn-tail", "bit-flip", "drop-drains"),
) -> List[FaultCell]:
    return [
        FaultCell(workload, scheme, kind)
        for workload in subjects
        for scheme in schemes
        for kind in kinds
    ]


def run_fault_campaign(
    budget: int = 24,
    seed: int = 7,
    *,
    cells: Optional[Sequence[FaultCell]] = None,
    num_ops: int = 10,
    value_bytes: int = 32,
    config: SystemConfig = STRESS_CONFIG,
    jobs: int = 1,
    progress=None,
) -> FaultCampaignResult:
    """Run the fault-cell grid; ops and FG baselines are shared per
    workload so every scheme/fault combination attacks the identical
    deterministic op sequence.  *jobs* > 1 fans cells out over worker
    processes with an order-preserving merge (byte-identical report)."""
    from repro.parallel import engine
    from repro.parallel.tasks import fault_cell

    if cells is None:
        cells = default_fault_cells()
    result = FaultCampaignResult(
        budget=budget, seed=seed, num_ops=num_ops, value_bytes=value_bytes
    )
    ops_cache: Dict[str, List[Op]] = {}
    baseline_cache: Dict[str, List[State]] = {}
    for cell in cells:
        if cell.workload not in ops_cache:
            ops_cache[cell.workload] = generate_ops(cell.workload, num_ops, seed)
            baseline_cache[cell.workload] = baseline_states(
                cell.workload,
                ops_cache[cell.workload],
                value_bytes=value_bytes,
                config=config,
            )
    descriptors = [
        {
            "cell": cell,
            "budget": budget,
            "seed": seed,
            "ops": ops_cache[cell.workload],
            "value_bytes": value_bytes,
            "config": config,
            "baseline": baseline_cache[cell.workload],
        }
        for cell in cells
    ]
    result.cells = engine.run_tasks(
        fault_cell,
        descriptors,
        jobs=jobs,
        labels=[str(cell) for cell in cells],
        progress=progress,
    )
    return result


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------

_COLUMNS = (
    ("workload", 10),
    ("scheme", 10),
    ("fault", 11),
    ("ops", 4),
    ("appends", 8),
    ("cases", 6),
    ("fired", 6),
    ("coverage", 10),
    ("violations", 10),
)


def _row(values: List) -> str:
    return "  ".join(
        str(v).ljust(width) for (_, width), v in zip(_COLUMNS, values)
    ).rstrip()


def format_fault_report(result: FaultCampaignResult) -> str:
    """The fault-campaign table plus totals, stable for a given
    ``(budget, seed)`` — no timestamps, fixed cell order."""
    lines = [
        "SLPMT media-fault injection campaign",
        f"budget={result.budget} sampled cases per cell, seed={result.seed}, "
        f"ops/cell={result.num_ops}, value_bytes={result.value_bytes}, "
        "config=stress (512B/1KB/8KB caches)",
        "torn-tail cells enumerate every word-boundary cut exhaustively",
        "",
        _row([name for name, _ in _COLUMNS]),
        _row(["-" * min(w, 10) for _, w in _COLUMNS]),
    ]
    for cell in result.cells:
        lines.append(
            _row(
                [
                    cell.cell.workload,
                    cell.cell.scheme,
                    cell.cell.fault_kind,
                    cell.num_ops,
                    cell.appends,
                    cell.cases_run,
                    cell.fired,
                    "all-cuts" if cell.exhaustive else "sampled",
                    len(cell.violations),
                ]
            )
        )
    exhaustive_cells = sum(1 for c in result.cells if c.exhaustive)
    lines += [
        "",
        f"cells: {len(result.cells)} "
        f"({exhaustive_cells} with exhaustive torn-tail coverage)",
        f"cases: {result.total_cases}",
        f"violations: {len(result.violations)}",
    ]
    for violation in result.violations:
        lines.append(f"  VIOLATION {violation}")
    lines.append("")
    return "\n".join(lines)
