"""``python -m repro fuzz`` — the campaign CLI.

Usage::

    python -m repro fuzz --budget 200 --seed 7     # full campaign
    python -m repro fuzz --workloads hashtable,dlist --schemes SLPMT
    python -m repro fuzz --replay repro.json       # re-run a reproducer
    python -m repro fuzz --hazard-demo             # catch the §IV-A bug
    python -m repro fuzz --faults                  # media-fault campaign
    python -m repro fuzz --faults --fault-kinds torn-tail
    python -m repro fuzz --multicore               # contention campaign
    python -m repro fuzz --multicore --cores 2,4 --thetas 0,0.9
    python -m repro fuzz --service                 # txn-service campaign
    python -m repro fuzz --service --batches 1,8 --schemes SLPMT
    python -m repro fuzz --twopc                   # cross-shard 2PC campaign
    python -m repro fuzz --twopc --shards 2,3 --schemes SLPMT

A campaign writes its table to ``benchmarks/results/fuzz_campaign.txt``
(override with ``--out``) and exits non-zero when any invariant
violation was found.  Every violation is shrunk to a minimal reproducer
and saved as ``fuzz_repro_<n>.json`` next to the report.

``--faults`` runs the media-fault injection campaign instead (torn log
tails, log bit flips, dropped WPQ drains; see
:mod:`repro.fuzz.faultcampaign`), writing its table to
``benchmarks/results/fault_campaign.txt`` and fault reproducers as
``fault_repro_<n>.json``.  The torn-tail cells enumerate every
word-boundary cut of every op-phase log append exhaustively.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List

from repro.fuzz.campaign import (
    DEFAULT_CELLS,
    POLICIES,
    SUBJECTS,
    FuzzCell,
    run_campaign,
)
from repro.fuzz.minimize import Reproducer, minimize, replay
from repro.fuzz.report import format_report
from repro.parallel.engine import WorkerCrash, resolve_jobs


def _progress(done: int, total: int, label: str) -> None:
    print(f"[{done}/{total}] {label}", file=sys.stderr)

DEFAULT_OUT = os.path.join("benchmarks", "results", "fuzz_campaign.txt")
DEFAULT_FAULT_OUT = os.path.join("benchmarks", "results", "fault_campaign.txt")
DEFAULT_MULTICORE_OUT = os.path.join(
    "benchmarks", "results", "multicore_campaign.txt"
)
DEFAULT_SERVICE_OUT = os.path.join(
    "benchmarks", "results", "service_campaign.txt"
)
DEFAULT_TWOPC_OUT = os.path.join(
    "benchmarks", "results", "twopc_campaign.txt"
)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Deterministic crash-consistency fuzzing campaign.",
    )
    parser.add_argument("--budget", type=int, default=None,
                        help="crash cases per cell (default 200; 24 for "
                             "the sampled cells of --faults)")
    parser.add_argument("--seed", type=int, default=7,
                        help="campaign RNG seed (default 7)")
    parser.add_argument("--ops", type=int, default=10,
                        help="operations per cell (default 10)")
    parser.add_argument("--value-bytes", type=int, default=32,
                        help="value payload size (default 32)")
    parser.add_argument("--workloads", type=str, default=None,
                        help="comma-separated subject filter")
    parser.add_argument("--schemes", type=str, default=None,
                        help="comma-separated scheme filter")
    parser.add_argument("--out", type=str, default=DEFAULT_OUT,
                        help=f"report path (default {DEFAULT_OUT})")
    parser.add_argument("--replay", type=str, default=None, metavar="FILE",
                        help="re-run a JSON reproducer instead of a campaign")
    parser.add_argument("--hazard-demo", action="store_true",
                        help="run the deliberately mis-annotated tombstone "
                             "cell (Section IV-A) and shrink its violation")
    parser.add_argument("--faults", action="store_true",
                        help="run the media-fault injection campaign "
                             "(torn tails, bit flips, dropped drains)")
    parser.add_argument("--fault-kinds", type=str, default=None,
                        help="comma-separated fault-kind filter for "
                             "--faults (torn-tail,bit-flip,drop-drains)")
    parser.add_argument("--multicore", action="store_true",
                        help="run the multi-core contention crash campaign "
                             "(shared-key zipfian streams, crash at sampled "
                             "turn-switch points)")
    parser.add_argument("--service", action="store_true",
                        help="run the transaction-service group-commit "
                             "crash campaign (ack => durable at every "
                             "persist point)")
    parser.add_argument("--twopc", action="store_true",
                        help="run the cross-shard 2PC crash campaign "
                             "(coordinator/participant crashes at every "
                             "protocol step, torn/bit-flipped decision "
                             "records; global atomicity at every case)")
    parser.add_argument("--shards", type=str, default="2,3",
                        help="comma-separated shard counts for --twopc "
                             "(default 2,3)")
    parser.add_argument("--batches", type=str, default="1,8",
                        help="comma-separated group-commit batch sizes for "
                             "--service (default 1,8)")
    parser.add_argument("--duration", type=int, default=None,
                        metavar="CYCLES",
                        help="run each --service cell in duration mode: "
                             "clients submit until the simulated clock "
                             "passes CYCLES instead of a fixed request "
                             "count")
    parser.add_argument("--cores", type=str, default="1,2,4",
                        help="comma-separated core counts for --multicore "
                             "(default 1,2,4)")
    parser.add_argument("--thetas", type=str, default="0,0.9",
                        help="comma-separated zipfian skews for --multicore "
                             "(default 0,0.9)")
    parser.add_argument("--num-keys", type=int, default=16,
                        help="shared key-population size for --multicore "
                             "(default 16)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the cell sweep "
                             "(default REPRO_JOBS or 1); the report is "
                             "byte-identical to a serial campaign")
    return parser


def _replay_main(path: str) -> int:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            rep = Reproducer.from_json(fh.read())
    except OSError as exc:
        raise SystemExit(f"cannot read reproducer: {exc}")
    except (ValueError, TypeError, KeyError) as exc:
        raise SystemExit(f"{path} is not a valid reproducer file: {exc}")
    result = replay(rep)
    print(f"replaying {path}: {rep.workload}/{rep.scheme}/{rep.policy} "
          f"@{rep.crash_kind}:{rep.crash_point} ({len(rep.ops)} ops)")
    if result.violation is None:
        print("no violation reproduced (expected: "
              f"[{rep.check}] {rep.violation})")
        return 1
    print(f"reproduced [{result.check}] {result.violation}")
    if result.violation != rep.violation or result.check != rep.check:
        print(f"MISMATCH: file records [{rep.check}] {rep.violation}")
        return 1
    print("violation matches the reproducer byte-for-byte")
    return 0


def _hazard_demo(args: argparse.Namespace) -> int:
    cells = [FuzzCell("hashtable", "SLPMT", "manual-buggy-tombstone")]
    budget = args.budget if args.budget is not None else 200
    result = run_campaign(
        budget=budget, seed=args.seed, cells=cells, num_ops=args.ops,
        value_bytes=args.value_bytes,
    )
    print(format_report(result))
    if not result.violations:
        print("hazard NOT caught — the campaign should have found the "
              "mis-annotated tombstone")
        return 1
    first = result.violations[0]
    from repro.fuzz.campaign import generate_ops

    ops = generate_ops("hashtable", args.ops, args.seed)
    rep = minimize(
        Reproducer.from_violation(first, ops, value_bytes=args.value_bytes)
    )
    out_dir = os.path.dirname(args.out) or "."
    os.makedirs(out_dir, exist_ok=True)
    rep_path = os.path.join(out_dir, "fuzz_repro_hazard.json")
    with open(rep_path, "w", encoding="utf-8") as fh:
        fh.write(rep.to_json())
    print(f"hazard caught: [{rep.check}] {rep.violation}")
    print(f"minimal reproducer ({len(rep.ops)} ops, "
          f"{rep.crash_kind} point {rep.crash_point}) -> {rep_path}")
    replayed = replay(rep)
    if replayed.violation == rep.violation:
        print("reproducer replays to the identical violation")
        return 0
    print("REPLAY MISMATCH")
    return 1


def _faults_main(args: argparse.Namespace) -> int:
    from repro.faults import FAULT_KINDS
    from repro.fuzz.campaign import generate_ops
    from repro.fuzz.faultcampaign import (
        DEFAULT_FAULT_SCHEMES,
        default_fault_cells,
        format_fault_report,
        run_fault_campaign,
    )

    subjects = list(SUBJECTS)
    if args.workloads:
        wanted = {w.strip() for w in args.workloads.split(",")}
        unknown = wanted - set(SUBJECTS)
        if unknown:
            raise SystemExit(f"unknown workload(s): {sorted(unknown)}")
        subjects = [s for s in subjects if s in wanted]
    schemes = list(DEFAULT_FAULT_SCHEMES)
    if args.schemes:
        schemes = [s.strip() for s in args.schemes.split(",")]
    kinds = list(FAULT_KINDS)
    if args.fault_kinds:
        kinds = [k.strip() for k in args.fault_kinds.split(",")]
        unknown = set(kinds) - set(FAULT_KINDS)
        if unknown:
            raise SystemExit(f"unknown fault kind(s): {sorted(unknown)}")
    cells = default_fault_cells(subjects=subjects, schemes=schemes, kinds=kinds)
    if not cells:
        raise SystemExit("no fault cells selected")

    budget = args.budget if args.budget is not None else 24
    out = args.out if args.out != DEFAULT_OUT else DEFAULT_FAULT_OUT
    jobs = resolve_jobs(args.jobs)
    try:
        result = run_fault_campaign(
            budget=budget, seed=args.seed, cells=cells, num_ops=args.ops,
            value_bytes=args.value_bytes, jobs=jobs,
            progress=_progress if jobs > 1 else None,
        )
    except WorkerCrash as exc:
        print(f"fault campaign failed: {exc}", file=sys.stderr)
        return 2
    text = format_fault_report(result)
    print(text, end="")

    out_dir = os.path.dirname(out) or "."
    os.makedirs(out_dir, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"[report written to {out}]")

    if result.violations:
        for n, violation in enumerate(result.violations):
            ops = generate_ops(violation.cell.workload, args.ops, args.seed)
            rep = minimize(
                Reproducer.from_fault_violation(
                    violation, ops, value_bytes=args.value_bytes
                )
            )
            rep_path = os.path.join(out_dir, f"fault_repro_{n}.json")
            with open(rep_path, "w", encoding="utf-8") as fh:
                fh.write(rep.to_json())
            print(f"[reproducer -> {rep_path}]")
        return 1
    return 0


def _multicore_main(args: argparse.Namespace) -> int:
    from repro.fuzz.campaign import (
        MULTICORE_SCHEMES,
        MultiCoreCell,
        run_multicore_campaign,
    )
    from repro.fuzz.report import format_multicore_report

    try:
        cores = [int(c) for c in args.cores.split(",") if c.strip()]
        thetas = [float(t) for t in args.thetas.split(",") if t.strip()]
    except ValueError as exc:
        raise SystemExit(f"bad --cores/--thetas value: {exc}")
    if not cores or any(c < 1 for c in cores):
        raise SystemExit("--cores needs positive core counts")
    if any(t < 0 for t in thetas):
        raise SystemExit("--thetas needs non-negative skews")
    workloads = ["hashtable"]
    if args.workloads:
        wanted = [w.strip() for w in args.workloads.split(",")]
        unknown = set(wanted) - set(SUBJECTS)
        if unknown:
            raise SystemExit(f"unknown workload(s): {sorted(unknown)}")
        workloads = wanted
    schemes = list(MULTICORE_SCHEMES)
    if args.schemes:
        schemes = [s.strip() for s in args.schemes.split(",")]
    cells = [
        MultiCoreCell(w, s, c, t)
        for w in workloads
        for s in schemes
        for c in cores
        for t in thetas
    ]
    if not cells:
        raise SystemExit("no cells selected")

    budget = args.budget if args.budget is not None else 60
    out = args.out if args.out != DEFAULT_OUT else DEFAULT_MULTICORE_OUT
    jobs = resolve_jobs(args.jobs)
    try:
        result = run_multicore_campaign(
            budget=budget, seed=args.seed, cells=cells,
            ops_per_core=args.ops, num_keys=args.num_keys,
            value_bytes=args.value_bytes, jobs=jobs,
            progress=_progress if jobs > 1 else None,
        )
    except WorkerCrash as exc:
        print(f"contention campaign failed: {exc}", file=sys.stderr)
        return 2
    text = format_multicore_report(result)
    print(text, end="")

    out_dir = os.path.dirname(out) or "."
    os.makedirs(out_dir, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"[report written to {out}]")
    return 1 if result.violations else 0


def _service_main(args: argparse.Namespace) -> int:
    from repro.fuzz.campaign import (
        DEFAULT_SERVICE_CELLS,
        SERVICE_SCHEMES,
        ServiceCell,
        run_service_campaign,
    )
    from repro.fuzz.report import format_service_report
    from repro.workloads import WORKLOADS

    try:
        batches = [int(b) for b in args.batches.split(",") if b.strip()]
    except ValueError as exc:
        raise SystemExit(f"bad --batches value: {exc}")
    if not batches or any(b < 1 for b in batches):
        raise SystemExit("--batches needs positive batch sizes")
    if not (args.workloads or args.schemes or args.batches != "1,8"):
        # No grid filters: the default grid, including the composite
        # multi-structure cells behind the wound-wait lock manager.
        cells = list(DEFAULT_SERVICE_CELLS)
    else:
        workloads = ["hashtable"]
        if args.workloads:
            wanted = [w.strip() for w in args.workloads.split(",")]
            unknown = set(wanted) - set(WORKLOADS)
            if unknown:
                raise SystemExit(f"unknown workload(s): {sorted(unknown)}")
            workloads = wanted
        schemes = list(SERVICE_SCHEMES)
        if args.schemes:
            schemes = [s.strip() for s in args.schemes.split(",")]
        # Composite subjects declare multiple lock structures; their
        # cells run behind the lock manager so cross-structure
        # atomicity is judged through it.
        cells = [
            ServiceCell(w, s, b, locking=(w == "multistruct"))
            for w in workloads
            for s in schemes
            for b in batches
        ]
    if not cells:
        raise SystemExit("no cells selected")

    budget = args.budget if args.budget is not None else 150
    out = args.out if args.out != DEFAULT_OUT else DEFAULT_SERVICE_OUT
    jobs = resolve_jobs(args.jobs)
    num_clients, requests_per_client = 5, 16
    try:
        result = run_service_campaign(
            budget=budget, seed=args.seed, cells=cells,
            num_clients=num_clients,
            requests_per_client=requests_per_client,
            value_bytes=args.value_bytes,
            duration_cycles=args.duration, jobs=jobs,
            progress=_progress if jobs > 1 else None,
        )
    except WorkerCrash as exc:
        print(f"service campaign failed: {exc}", file=sys.stderr)
        return 2
    text = format_service_report(result)
    print(text, end="")

    out_dir = os.path.dirname(out) or "."
    os.makedirs(out_dir, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"[report written to {out}]")

    if result.violations:
        for n, violation in enumerate(result.violations):
            rep = minimize(
                Reproducer.from_service_violation(
                    violation,
                    num_clients=num_clients,
                    requests_per_client=requests_per_client,
                    value_bytes=args.value_bytes,
                    seed=args.seed,
                )
            )
            rep_path = os.path.join(out_dir, f"service_repro_{n}.json")
            with open(rep_path, "w", encoding="utf-8") as fh:
                fh.write(rep.to_json())
            print(f"[reproducer -> {rep_path}]")
        return 1
    return 0


def _twopc_main(args: argparse.Namespace) -> int:
    from repro.fuzz.report import format_twopc_report
    from repro.fuzz.twopc import (
        TWOPC_FAULTS,
        TWOPC_FUZZ_SCHEMES,
        TwoPCCell,
        run_twopc_campaign,
    )
    from repro.workloads import WORKLOADS

    try:
        shards = [int(s) for s in args.shards.split(",") if s.strip()]
    except ValueError as exc:
        raise SystemExit(f"bad --shards value: {exc}")
    if not shards or any(s < 2 for s in shards):
        raise SystemExit("--shards needs counts of at least 2 (N=1 has no "
                         "cross-shard protocol; its passivity is a test)")
    workloads = ["hashtable"]
    if args.workloads:
        wanted = [w.strip() for w in args.workloads.split(",")]
        unknown = set(wanted) - set(WORKLOADS)
        if unknown:
            raise SystemExit(f"unknown workload(s): {sorted(unknown)}")
        workloads = wanted
    schemes = list(TWOPC_FUZZ_SCHEMES)
    if args.schemes:
        schemes = [s.strip() for s in args.schemes.split(",")]
    cells = [
        TwoPCCell(w, s, n, fault)
        for w in workloads
        for s in schemes
        for n in shards
        for fault in TWOPC_FAULTS
    ]
    if not cells:
        raise SystemExit("no cells selected")

    budget = args.budget if args.budget is not None else 70
    out = args.out if args.out != DEFAULT_OUT else DEFAULT_TWOPC_OUT
    jobs = resolve_jobs(args.jobs)
    num_clients, requests_per_client = 4, 12
    try:
        result = run_twopc_campaign(
            budget=budget, seed=args.seed, cells=cells,
            num_clients=num_clients,
            requests_per_client=requests_per_client,
            value_bytes=args.value_bytes, jobs=jobs,
            progress=_progress if jobs > 1 else None,
        )
    except WorkerCrash as exc:
        print(f"2PC campaign failed: {exc}", file=sys.stderr)
        return 2
    text = format_twopc_report(result)
    print(text, end="")

    out_dir = os.path.dirname(out) or "."
    os.makedirs(out_dir, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"[report written to {out}]")

    if result.violations:
        for n, violation in enumerate(result.violations):
            rep = minimize(
                Reproducer.from_twopc_violation(
                    violation,
                    num_clients=num_clients,
                    requests_per_client=requests_per_client,
                    value_bytes=args.value_bytes,
                    seed=args.seed,
                )
            )
            rep_path = os.path.join(out_dir, f"twopc_repro_{n}.json")
            with open(rep_path, "w", encoding="utf-8") as fh:
                fh.write(rep.to_json())
            print(f"[reproducer -> {rep_path}]")
        return 1
    return 0


def fuzz_main(argv: "List[str] | None" = None) -> int:
    args = _parser().parse_args(argv)
    if args.replay:
        return _replay_main(args.replay)
    if args.hazard_demo:
        return _hazard_demo(args)
    if args.faults:
        return _faults_main(args)
    if args.fault_kinds:
        raise SystemExit("--fault-kinds requires --faults")
    if args.duration is not None and not args.service:
        raise SystemExit("--duration requires --service")
    if args.multicore:
        return _multicore_main(args)
    if args.service:
        return _service_main(args)
    if args.twopc:
        return _twopc_main(args)

    cells = list(DEFAULT_CELLS)
    if args.workloads:
        wanted = {w.strip() for w in args.workloads.split(",")}
        unknown = wanted - set(SUBJECTS)
        if unknown:
            raise SystemExit(f"unknown workload(s): {sorted(unknown)}")
        cells = [c for c in cells if c.workload in wanted]
    if args.schemes:
        wanted = {s.strip() for s in args.schemes.split(",")}
        cells = [c for c in cells if c.scheme in wanted]
    if not cells:
        raise SystemExit("no cells selected")

    jobs = resolve_jobs(args.jobs)
    try:
        result = run_campaign(
            budget=args.budget if args.budget is not None else 200,
            seed=args.seed, cells=cells, num_ops=args.ops,
            value_bytes=args.value_bytes, jobs=jobs,
            progress=_progress if jobs > 1 else None,
        )
    except WorkerCrash as exc:
        print(f"fuzz campaign failed: {exc}", file=sys.stderr)
        return 2
    text = format_report(result)
    print(text, end="")

    out_dir = os.path.dirname(args.out) or "."
    os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"[report written to {args.out}]")

    if result.violations:
        from repro.fuzz.campaign import generate_ops

        for n, violation in enumerate(result.violations):
            ops = generate_ops(violation.cell.workload, args.ops, args.seed)
            rep = minimize(
                Reproducer.from_violation(
                    violation, ops, value_bytes=args.value_bytes
                )
            )
            rep_path = os.path.join(out_dir, f"fuzz_repro_{n}.json")
            with open(rep_path, "w", encoding="utf-8") as fh:
                fh.write(rep.to_json())
            print(f"[reproducer -> {rep_path}]")
        return 1
    return 0
