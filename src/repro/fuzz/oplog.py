"""Transaction-outcome capture for the fuzz campaign.

An :class:`OpLog` plugs into :attr:`repro.runtime.ptx.PTx.op_log` and
records, per driver-level operation, how many transactions committed and
aborted.  Workload operations may run more than one transaction
(a heap growth or a hashtable resize commits in its own transaction
before the insert proper), so the log keeps the mapping explicit instead
of assuming one transaction per operation.

The campaign uses it two ways:

* as a cross-check that the driver's committed-prefix accounting agrees
  with what the runtime actually committed;
* as the per-cell "transactions committed" coverage statistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class OpRecord:
    """Transactions observed while one driver operation ran."""

    index: int
    commits: int = 0
    aborts: int = 0


@dataclass
class OpLog:
    """Per-operation transaction outcome log (PTx ``op_log`` protocol)."""

    records: List[OpRecord] = field(default_factory=list)

    def begin_op(self, index: int) -> None:
        """Mark the start of driver operation *index*."""
        self.records.append(OpRecord(index=index))

    # --- PTx op_log protocol -------------------------------------------

    def committed(self) -> None:
        if self.records:
            self.records[-1].commits += 1

    def aborted(self) -> None:
        if self.records:
            self.records[-1].aborts += 1

    # --- accounting ----------------------------------------------------

    @property
    def total_commits(self) -> int:
        return sum(r.commits for r in self.records)

    @property
    def total_aborts(self) -> int:
        return sum(r.aborts for r in self.records)

    def ops_with_commits(self) -> List[int]:
        """Indices of operations during which at least one transaction
        committed (a crashed op may still appear here when a helper
        transaction — e.g. a growth — committed before the crash)."""
        return [r.index for r in self.records if r.commits]
