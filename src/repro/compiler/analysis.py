"""Dataflow analyses behind the two annotation patterns (Section IV-B).

Everything works on *origin sets*: for each SSA value, the set of root
facts it derives from, computed in one forward pass over the straight-
line SSA function (the MemorySSA-lite dependence walk the paper's
implementation performs with LLVM MemorySSA).

Origins:

* ``alloc:<name>``   — the value is (an address into) a fresh allocation;
* ``param:<name>``   — a function parameter (durable root);
* ``load:<addr>``    — the value was loaded through that address value;
* ``const``          — a literal;
* ``opaque``         — the result of an opaque call: control-dependent or
  semantically deep, never provable.

**Pattern 1 (log-free)**: a store's *address* derives only from
allocations made in this transaction, or from regions freed in this
transaction.  Re-executing the allocating function reproduces the data;
a leaked region is reclaimed by GC.

**Pattern 2 (lazy persistence)**: the store's *value* and *address* both
derive only from recoverable facts — parameters, constants, and loads of
persistent locations that the transaction does not subsequently
overwrite (so recovery can re-read them).  Anything tainted by an opaque
call fails, which is exactly how colors, counters and heights escape the
compiler while parent pointers (pure copies of other pointers) pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.compiler.ir import (
    Alloc,
    BinOp,
    Call,
    Const,
    FreeMem,
    Function,
    Gep,
    LoadMem,
    Param,
    StoreMem,
)

OPAQUE = "opaque"
CONST = "const"


def origin_sets(fn: Function) -> Dict[str, Set[str]]:
    """Forward derivation analysis: SSA name -> set of origin facts."""
    origins: Dict[str, Set[str]] = {}
    for instr in fn.instrs:
        if isinstance(instr, Param):
            origins[instr.dest] = {f"param:{instr.dest}"}
        elif isinstance(instr, Const):
            origins[instr.dest] = {CONST}
        elif isinstance(instr, Alloc):
            origins[instr.dest] = {f"alloc:{instr.dest}"}
        elif isinstance(instr, Gep):
            origins[instr.dest] = set(origins[instr.base])
        elif isinstance(instr, BinOp):
            origins[instr.dest] = origins[instr.a] | origins[instr.b]
        elif isinstance(instr, LoadMem):
            origins[instr.dest] = {f"load:{instr.addr}"} | origins[instr.addr]
        elif isinstance(instr, Call):
            origins[instr.dest] = {OPAQUE}
    return origins


def freed_values(fn: Function) -> Set[str]:
    """SSA names freed inside the transaction (dead-region candidates)."""
    return {i.ptr for i in fn.instrs if isinstance(i, FreeMem)}


def overwritten_load_addrs(fn: Function) -> Set[str]:
    """Address values that the transaction both loads *and* stores through.

    A load from such an address is not safely re-readable by recovery —
    the transaction may have clobbered it — so Pattern 2 rejects values
    derived from it.  (Conservative: value-name granularity, like a
    flow-insensitive MemorySSA clobber check.)
    """
    stored = {i.addr for i in fn.instrs if isinstance(i, StoreMem)}
    loaded = {i.addr for i in fn.instrs if isinstance(i, LoadMem)}
    return stored & loaded


@dataclass
class SiteDecision:
    """The compiler's verdict for one store site."""

    site: str
    log_free: bool = False
    lazy: bool = False
    reason: str = ""

    @property
    def annotated(self) -> bool:
        return self.log_free or self.lazy


@dataclass
class FunctionAnalysis:
    """All per-site decisions for one transaction body."""

    function: Function
    decisions: Dict[str, SiteDecision] = field(default_factory=dict)

    def decision(self, site: str) -> SiteDecision:
        return self.decisions[site]


def analyse(fn: Function) -> FunctionAnalysis:
    """Run Pattern 1 + Pattern 2 over every store site of *fn*."""
    origins = origin_sets(fn)
    freed = freed_values(fn)
    freed_origins = {
        origin for name in freed for origin in origins.get(name, set())
    }
    clobbered = overwritten_load_addrs(fn)
    result = FunctionAnalysis(function=fn)
    for store in fn.stores():
        result.decisions[store.site] = _decide(
            store, origins, freed_origins, clobbered
        )
    return result


def _decide(
    store: StoreMem,
    origins: Dict[str, Set[str]],
    freed_origins: Set[str],
    clobbered: Set[str],
) -> SiteDecision:
    addr_origins = origins[store.addr]
    value_origins = origins[store.value]

    # Pattern 1: the target is transaction-fresh or transaction-dead.
    if addr_origins and all(o.startswith("alloc:") for o in addr_origins):
        lazy = bool(freed_origins) and addr_origins <= freed_origins
        return SiteDecision(
            store.site,
            log_free=True,
            lazy=lazy,
            reason="pattern1: address derives only from in-txn allocation"
            + (" (freed in txn)" if lazy else ""),
        )
    if addr_origins and addr_origins <= freed_origins:
        return SiteDecision(
            store.site,
            log_free=True,
            lazy=True,
            reason="pattern1: target region freed in this transaction",
        )

    # Pattern 2: value and address rebuildable from recoverable facts.
    if _recoverable(value_origins, clobbered) and _recoverable(
        addr_origins, clobbered
    ):
        return SiteDecision(
            store.site,
            lazy=True,
            reason="pattern2: value and address derive from recoverable data",
        )

    why = "opaque/control-dependent value" if OPAQUE in value_origins else (
        "depends on data clobbered in the transaction"
    )
    return SiteDecision(store.site, reason=f"not annotatable: {why}")


def _recoverable(origin_set: Set[str], clobbered: Set[str]) -> bool:
    if not origin_set or OPAQUE in origin_set:
        return False
    for origin in origin_set:
        if origin == CONST or origin.startswith("param:"):
            continue
        if origin.startswith("alloc:"):
            continue  # fresh memory: address re-derivable via re-execution
        if origin.startswith("load:"):
            addr_name = origin.split(":", 1)[1]
            if addr_name in clobbered:
                return False
            continue
        return False
    return True
