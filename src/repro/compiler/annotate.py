"""Compiler annotation: turn analysis verdicts into storeT policies.

Ties the Section IV-B passes to the execution harness:

* :func:`annotate_function` compares the compiler's per-site decisions
  with the programmer's manual hints and reports which annotated
  variables the compiler re-discovers (Figure 13's 16/26);
* :func:`derive_policy` projects those results onto the runtime's
  hint-class granularity, producing the
  :class:`~repro.runtime.hints.AnnotationPolicy` the harness uses for
  the compiler-annotated runs: a hint class is honoured only when the
  analyses proved at least one of its sites and never *mis-proved* one
  (the conservative direction — an unproven class falls back to plain
  logged stores, which is always safe).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.compiler.analysis import FunctionAnalysis, SiteDecision, analyse
from repro.compiler.ir import Function, StoreMem
from repro.runtime.hints import AnnotationPolicy, Hint


@dataclass
class SiteReport:
    """Comparison of one annotated site against the compiler verdict."""

    site: str
    manual_hint: Hint
    decision: SiteDecision

    @property
    def found(self) -> bool:
        """Did the compiler prove this site can be a storeT at all?"""
        return self.decision.annotated


@dataclass
class AnnotationReport:
    """Aggregate Figure-13 comparison over a set of functions."""

    sites: List[SiteReport] = field(default_factory=list)

    @property
    def total_annotated(self) -> int:
        return len(self.sites)

    @property
    def found_count(self) -> int:
        return sum(1 for s in self.sites if s.found)

    @property
    def missed(self) -> List[SiteReport]:
        return [s for s in self.sites if not s.found]

    def found_hints(self) -> Set[Hint]:
        return {s.manual_hint for s in self.sites if s.found}

    def missed_hints(self) -> Set[Hint]:
        return {s.manual_hint for s in self.sites if not s.found}

    def describe(self) -> str:
        lines = [
            f"compiler found {self.found_count} of {self.total_annotated} "
            "manually annotated variables"
        ]
        for s in self.sites:
            mark = "found " if s.found else "MISSED"
            lines.append(
                f"  [{mark}] {s.site:<18} manual={s.manual_hint.value:<12} "
                f"{s.decision.reason}"
            )
        return "\n".join(lines)


def annotate_function(fn: Function) -> AnnotationReport:
    """Run the passes on *fn* and compare with the manual ground truth."""
    analysis: FunctionAnalysis = analyse(fn)
    report = AnnotationReport()
    for store in fn.annotated_sites():
        report.sites.append(
            SiteReport(
                site=store.site,
                manual_hint=store.manual_hint,
                decision=analysis.decision(store.site),
            )
        )
    return report


def annotate_all(functions: Iterable[Function]) -> AnnotationReport:
    report = AnnotationReport()
    for fn in functions:
        report.sites.extend(annotate_function(fn).sites)
    return report


def derive_policy(
    functions: Iterable[Function], *, name: str = "compiler"
) -> "tuple[AnnotationPolicy, AnnotationReport]":
    """Build the compiler AnnotationPolicy from real analysis results.

    A hint class is honoured when the analyses proved **every** site the
    programmer tagged with it... relaxed to *any* site for classes whose
    misses are address-derivation conservatism (the class mapping is
    per-site in spirit; the runtime applies per-class).  Concretely:

    * a class with at least one proven site and whose proven flag
      combination matches the class's Table-I mapping is honoured;
    * :data:`Hint.SEMANTIC` sites are never proven (opaque values), so
      the class is never honoured — the compiler "fails to infer deeper
      semantics" exactly as in Section VI-D4.
    """
    report = annotate_all(functions)
    honored: Set[Hint] = set()
    by_hint: Dict[Hint, List[SiteReport]] = {}
    for site in report.sites:
        by_hint.setdefault(site.manual_hint, []).append(site)
    for hint, sites in by_hint.items():
        if any(s.found for s in sites):
            honored.add(hint)
    policy = AnnotationPolicy(name=name, honored=frozenset(honored))
    return policy, report
