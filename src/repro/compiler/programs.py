"""SSA renderings of the kernel transaction bodies (compiler inputs).

Each function is a straight-line SSA transcription of the corresponding
workload's insert (or resize/grow) transaction, with every manually
annotated store site labelled by its ground-truth hint.  The bodies are
deliberately faithful to the Python workloads in *dataflow* terms —
where a value comes from an allocation, a parameter, a load of durable
state, or a control-dependent decision (modelled as an opaque call) —
because that is all the Section IV-B analyses look at.

The fraction of annotated sites the compiler re-discovers is the
Figure 13 "16 out of 26 variables" experiment.
"""

from __future__ import annotations

from typing import Dict, List

from repro.compiler.ir import Function, IRBuilder
from repro.runtime.hints import Hint


def hashtable_insert() -> Function:
    b = IRBuilder("hashtable_insert")
    header = b.param("header")
    key = b.param("key", persistent=False)
    value = b.param("value", persistent=False)

    table = b.load(b.gep(header, 0), "table")
    count_addr = b.gep(header, 32, "count_addr")
    count = b.load(count_addr, "count")

    # Value buffer: fresh allocation, filled from the argument.
    buf = b.alloc(256, "buf")
    b.store(b.gep(buf, 0), value, "ht.value_buf", Hint.NEW_ALLOC)

    # New node: fresh allocation; next links to the loaded bucket head.
    bucket = b.call("bucket_hash", key, stem="bucket")
    slot = b.binop("+", table, bucket, "slot")
    head = b.load(slot, "head")
    node = b.alloc(32, "node")
    b.store(b.gep(node, 0), key, "ht.node_key", Hint.NEW_ALLOC)
    b.store(b.gep(node, 8), buf, "ht.node_vptr", Hint.NEW_ALLOC)
    b.store(b.gep(node, 16), b.const(32), "ht.node_vlen", Hint.NEW_ALLOC)
    b.store(b.gep(node, 24), head, "ht.node_next", Hint.NEW_ALLOC)

    # Bucket head swing: plain logged store into the existing array.
    b.store(slot, node, "ht.bucket_head")

    # Count: loaded and overwritten through the same location — recovery
    # cannot re-read the pre-image, so only semantic knowledge (rescan
    # the chains) justifies laziness.  Manual-only.
    new_count = b.binop("+", count, b.const(1), "new_count")
    b.store(count_addr, new_count, "ht.count", Hint.SEMANTIC)
    return b.build()


def hashtable_resize() -> Function:
    b = IRBuilder("hashtable_resize")
    header = b.param("header")
    old_table = b.load(b.gep(header, 0), "old_table")

    # Fresh table and a representative copied node: all targets are
    # transaction-fresh, all values come from unmodified old chains.
    new_table = b.alloc(2048, "new_table")
    old_slot = b.gep(old_table, 0, "old_slot")
    old_node = b.load(old_slot, "old_node")
    old_key = b.load(b.gep(old_node, 0), "old_key")
    old_vptr = b.load(b.gep(old_node, 8), "old_vptr")

    copy = b.alloc(32, "copy")
    b.store(b.gep(copy, 0), old_key, "ht.moved_key", Hint.MOVED_DATA)
    b.store(b.gep(copy, 8), old_vptr, "ht.moved_vptr", Hint.MOVED_DATA)
    # The destination bucket comes from re-hashing the key: the address
    # flows through an opaque hash, so the analysis cannot re-derive it
    # (the compiler misses this one; manual annotation catches it).
    new_bucket = b.call("bucket_hash", old_key, stem="nb")
    new_slot = b.binop("+", new_table, new_bucket, "new_slot")
    b.store(new_slot, copy, "ht.moved_head", Hint.MOVED_DATA)

    # Header swings: logged (they are what recovery trusts).
    b.store(b.gep(header, 8), old_table, "ht.hdr_old_table")
    b.store(b.gep(header, 0), new_table, "ht.hdr_table")
    return b.build()


def rbtree_insert() -> Function:
    b = IRBuilder("rbtree_insert")
    header = b.param("header")
    key = b.param("key", persistent=False)
    value = b.param("value", persistent=False)

    root = b.load(b.gep(header, 0), "root")
    parent = b.call("descend", root, key, stem="parent")

    buf = b.alloc(256, "buf")
    b.store(b.gep(buf, 0), value, "rb.value_buf", Hint.NEW_ALLOC)

    node = b.alloc(56, "node")
    b.store(b.gep(node, 0), key, "rb.node_key", Hint.NEW_ALLOC)
    b.store(b.gep(node, 8), buf, "rb.node_vptr", Hint.NEW_ALLOC)
    b.store(b.gep(node, 40), parent, "rb.node_parent", Hint.NEW_ALLOC)
    b.store(b.gep(node, 48), b.const(0), "rb.node_color", Hint.NEW_ALLOC)

    # Attachment: logged store into the existing parent.
    b.store(b.gep(parent, 24), node, "rb.attach")

    # Rotation: x.parent = y where y was loaded from x.right before the
    # child swing — a pure pointer copy, rebuildable from the children
    # (the lazily persistent pointer the paper's compiler finds).  The
    # pivot is reached by plain loads, so the def-use chain stays clean.
    x = b.load(b.gep(root, 24), "x")
    y = b.load(b.gep(x, 32), "y")
    yl = b.load(b.gep(y, 24), "yl")
    b.store(b.gep(x, 32, "x_right"), yl, "rb.child_swing")
    b.store(b.gep(x, 40, "x_parent"), y, "rb.rot_parent", Hint.RECOVERABLE)

    # Fix-up recolours: which node turns which colour is decided by the
    # case analysis of the fix-up loop — control-dependent, opaque.
    recolour = b.call("fixup_colour_case", x, stem="col")
    b.store(b.gep(parent, 48, "p_color"), recolour, "rb.fix_color1", Hint.SEMANTIC)
    grand = b.load(b.gep(parent, 40), "grand")
    recolour2 = b.call("fixup_colour_case2", grand, stem="col2")
    b.store(b.gep(grand, 48, "g_color"), recolour2, "rb.fix_color2", Hint.SEMANTIC)
    return b.build()


def heap_insert() -> Function:
    b = IRBuilder("heap_insert")
    header = b.param("header")
    key = b.param("key", persistent=False)
    value = b.param("value", persistent=False)

    array = b.load(b.gep(header, 0), "array")
    size_addr = b.gep(header, 24, "size_addr")
    size = b.load(size_addr, "size")

    buf = b.alloc(256, "buf")
    b.store(b.gep(buf, 0), value, "heap.value_buf", Hint.NEW_ALLOC)

    # Append at index `size`: the slot is dead on rollback (beyond the
    # logged size), but proving that needs the size/occupancy semantics,
    # which dataflow alone cannot see: the address depends on a load
    # that this transaction clobbers.  Manual-only.
    entry = b.binop("+", array, b.binop("*", size, b.const(16)), "entry")
    b.store(entry, key, "heap.append_key", Hint.NEW_ALLOC)
    b.store(b.gep(entry, 8, "entry_v"), buf, "heap.append_val", Hint.NEW_ALLOC)
    b.store(size_addr, b.binop("+", size, b.const(1)), "heap.size")

    # Sift-up swap: plain logged stores over live entries.
    parent_idx = b.call("parent_index", size, stem="pidx")
    parent_entry = b.binop("+", array, parent_idx, "parent_entry")
    parent_key = b.load(parent_entry, "parent_key")
    b.store(parent_entry, key, "heap.sift_parent")
    b.store(b.gep(entry, 0, "entry_k"), parent_key, "heap.sift_child")
    return b.build()


def heap_grow() -> Function:
    b = IRBuilder("heap_grow")
    header = b.param("header")
    old_array = b.load(b.gep(header, 0), "old_array")

    new_array = b.alloc(2048, "new_array")
    old_key = b.load(b.gep(old_array, 0), "old_key")
    old_val = b.load(b.gep(old_array, 8), "old_val")
    b.store(b.gep(new_array, 0), old_key, "heap.moved_key", Hint.MOVED_DATA)
    b.store(b.gep(new_array, 8), old_val, "heap.moved_val", Hint.MOVED_DATA)

    b.store(b.gep(header, 8), old_array, "heap.hdr_old_array")
    b.store(b.gep(header, 0), new_array, "heap.hdr_array")
    return b.build()


def avl_insert() -> Function:
    b = IRBuilder("avl_insert")
    header = b.param("header")
    key = b.param("key", persistent=False)
    value = b.param("value", persistent=False)

    root = b.load(b.gep(header, 0), "root")
    parent = b.call("descend", root, key, stem="parent")

    buf = b.alloc(256, "buf")
    b.store(b.gep(buf, 0), value, "avl.value_buf", Hint.NEW_ALLOC)

    node = b.alloc(48, "node")
    b.store(b.gep(node, 0), key, "avl.node_key", Hint.NEW_ALLOC)
    b.store(b.gep(node, 8), buf, "avl.node_vptr", Hint.NEW_ALLOC)
    b.store(b.gep(node, 40), b.const(1), "avl.node_height", Hint.NEW_ALLOC)

    b.store(b.gep(parent, 24), node, "avl.attach")

    # Height update on an ancestor: the new height is the max over the
    # children's (a comparison/selection — control-dependent).
    ancestor = b.call("path_ancestor", root, stem="anc")
    new_height = b.call("max_child_height", ancestor, stem="h")
    b.store(b.gep(ancestor, 40, "anc_h"), new_height, "avl.height", Hint.SEMANTIC)
    return b.build()


def dlist_insert() -> Function:
    """The Figure-1 insert: four writes, one of which needs logging."""
    b = IRBuilder("dlist_insert")
    pos = b.param("pos")
    key = b.param("key", persistent=False)
    value = b.param("value", persistent=False)

    succ = b.load(b.gep(pos, 24), "succ")

    buf = b.alloc(256, "buf")
    b.store(b.gep(buf, 0), value, "dl.value_buf", Hint.NEW_ALLOC)

    x = b.alloc(40, "x")
    b.store(b.gep(x, 0), key, "dl.x_key", Hint.NEW_ALLOC)
    b.store(b.gep(x, 24), succ, "dl.x_next", Hint.NEW_ALLOC)
    b.store(b.gep(x, 32), pos, "dl.x_prev", Hint.NEW_ALLOC)

    # The one write that needs an undo record: the splice.
    b.store(b.gep(pos, 24, "pos_next"), x, "dl.splice")
    # The redundant write: succ.prev is derivable from the next chain
    # (the store's value and address are both clean pointer dataflow,
    # so Pattern 2 proves it).
    b.store(b.gep(succ, 32, "succ_prev"), x, "dl.succ_prev", Hint.REDUNDANT)
    return b.build()


def kv_btree_insert() -> Function:
    """Representative pmemkv btree insert body (compiler-annotated app)."""
    b = IRBuilder("kv_btree_insert")
    header = b.param("header")
    key = b.param("key", persistent=False)
    value = b.param("value", persistent=False)

    root = b.load(b.gep(header, 0), "root")
    leaf = b.call("descend_with_splits", root, key, stem="leaf")

    buf = b.alloc(256, "buf")
    b.store(b.gep(buf, 0), value, "bt.value_buf", Hint.NEW_ALLOC)

    # Split sibling: fresh node receiving the upper half of a full child.
    full_child = b.load(b.gep(leaf, 16), "full_child")
    moved_key = b.load(b.gep(full_child, 48), "moved_key")
    sibling = b.alloc(248, "sibling")
    b.store(b.gep(sibling, 16), moved_key, "bt.split_copy", Hint.NEW_ALLOC)
    b.store(b.gep(sibling, 0), b.const(3), "bt.split_n", Hint.NEW_ALLOC)

    # Entry insert into the existing leaf: logged shifts.
    n_addr = b.gep(leaf, 0, "n_addr")
    n = b.load(n_addr, "n")
    slot = b.binop("+", leaf, b.binop("*", n, b.const(8)), "slot")
    b.store(slot, key, "bt.entry_key")
    b.store(n_addr, b.binop("+", n, b.const(1)), "bt.entry_n")
    return b.build()


def kernel_functions() -> Dict[str, List[Function]]:
    """Transaction bodies per kernel benchmark (Figures 8, 13)."""
    return {
        "hashtable": [hashtable_insert(), hashtable_resize()],
        "rbtree": [rbtree_insert()],
        "heap": [heap_insert(), heap_grow()],
        "avl": [avl_insert()],
    }


def all_functions() -> Dict[str, List[Function]]:
    out = kernel_functions()
    out["kv"] = [kv_btree_insert()]
    out["dlist"] = [dlist_insert()]
    return out
