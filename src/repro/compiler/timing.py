"""Compile-time accounting for the annotation passes (Figure 13, right).

The paper reports that the analysis adds marginal compile time (up to
23% relative on btree, under 0.15 s absolute).  We measure the same
quantity for our pipeline: a *baseline compile* (SSA validation, a
constant-folding peephole, and lowering to a pseudo-assembly listing —
the work any compiler does regardless of annotation), against the same
pipeline plus the Pattern 1/2 analyses and annotation comparison.

Times are wall-clock over many repetitions for stability; what matters
for the reproduction is the *relative* overhead, which is geometry-free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.compiler.analysis import analyse
from repro.compiler.annotate import annotate_function
from repro.compiler.ir import (
    Alloc,
    BinOp,
    Call,
    Const,
    FreeMem,
    Function,
    Gep,
    Instr,
    LoadMem,
    Param,
    StoreMem,
)


def lower(fn: Function) -> List[str]:
    """Baseline lowering: constant folding + pseudo-assembly emission."""
    consts: Dict[str, int] = {}
    out: List[str] = [f".func {fn.name}"]
    for instr in fn.instrs:
        out.append(_emit(instr, consts))
    out.append(".end")
    return out


def liveness(fn: Function) -> Dict[str, "tuple[int, int]"]:
    """Live ranges (def index, last use index) of every SSA value."""
    ranges: Dict[str, List[int]] = {}
    for i, instr in enumerate(fn.instrs):
        dest = getattr(instr, "dest", None)
        if dest is not None:
            ranges[dest] = [i, i]
        for used in _instr_uses(instr):
            if used in ranges:
                ranges[used][1] = i
    return {name: (lo, hi) for name, (lo, hi) in ranges.items()}


def assign_registers(fn: Function, *, num_regs: int = 16) -> Dict[str, int]:
    """Naive linear-scan register assignment over the live ranges."""
    ranges = liveness(fn)
    order = sorted(ranges, key=lambda n: ranges[n][0])
    active: List[str] = []
    free = list(range(num_regs))
    assignment: Dict[str, int] = {}
    spill_slot = num_regs
    for name in order:
        start, _ = ranges[name]
        for held in list(active):
            if ranges[held][1] < start:
                active.remove(held)
                if assignment[held] < num_regs:
                    free.append(assignment[held])
        if free:
            assignment[name] = free.pop()
            active.append(name)
        else:
            assignment[name] = spill_slot
            spill_slot += 1
    return assignment


def encode(listing: List[str], registers: Dict[str, int]) -> bytes:
    """Mock machine-code encoding of the lowered listing."""
    blob = bytearray()
    for line in listing:
        h = 2166136261
        for ch in line:
            h = (h ^ ord(ch)) * 16777619 & 0xFFFFFFFF
        blob.extend(h.to_bytes(4, "little"))
    for name in sorted(registers):
        blob.append(registers[name] & 0xFF)
    return bytes(blob)


def baseline_pipeline(fn: Function) -> bytes:
    """Everything a compiler does regardless of storeT annotation:
    validation, lowering with constant folding, liveness, register
    assignment, and encoding."""
    fn.validate()
    listing = lower(fn)
    registers = assign_registers(fn)
    return encode(listing, registers)


def _instr_uses(instr: Instr) -> List[str]:
    if isinstance(instr, Gep):
        return [instr.base]
    if isinstance(instr, BinOp):
        return [instr.a, instr.b]
    if isinstance(instr, LoadMem):
        return [instr.addr]
    if isinstance(instr, StoreMem):
        return [instr.addr, instr.value]
    if isinstance(instr, FreeMem):
        return [instr.ptr]
    if isinstance(instr, Call):
        return list(instr.args)
    return []


def _emit(instr: Instr, consts: Dict[str, int]) -> str:
    if isinstance(instr, Const):
        consts[instr.dest] = instr.value
        return f"  mov {instr.dest}, {instr.value}"
    if isinstance(instr, Param):
        return f"  arg {instr.dest}"
    if isinstance(instr, Alloc):
        return f"  call malloc, {instr.size} -> {instr.dest}"
    if isinstance(instr, FreeMem):
        return f"  call free, {instr.ptr}"
    if isinstance(instr, Gep):
        return f"  lea {instr.dest}, [{instr.base}+{instr.offset}]"
    if isinstance(instr, BinOp):
        # Peephole: fold when both operands are known constants.
        if instr.a in consts and instr.b in consts and instr.op == "+":
            folded = consts[instr.a] + consts[instr.b]
            consts[instr.dest] = folded
            return f"  mov {instr.dest}, {folded}"
        return f"  {instr.op} {instr.dest}, {instr.a}, {instr.b}"
    if isinstance(instr, LoadMem):
        return f"  load {instr.dest}, [{instr.addr}]"
    if isinstance(instr, StoreMem):
        return f"  store [{instr.addr}], {instr.value}"
    if isinstance(instr, Call):
        return f"  call {instr.fn}, {', '.join(instr.args)} -> {instr.dest}"
    return f"  ; {instr!r}"


@dataclass(frozen=True)
class CompileTiming:
    """Measured compile times for one function set."""

    name: str
    baseline_seconds: float
    optimized_seconds: float

    @property
    def overhead(self) -> float:
        """Relative extra time spent on the annotation analyses."""
        if self.baseline_seconds == 0:
            return 0.0
        return self.optimized_seconds / self.baseline_seconds - 1.0

    @property
    def absolute_extra_seconds(self) -> float:
        return self.optimized_seconds - self.baseline_seconds


def measure_compile_time(
    name: str, functions: Iterable[Function], *, repeats: int = 200
) -> CompileTiming:
    """Time baseline vs analysis-enabled compilation of *functions*."""
    fns = list(functions)

    start = time.perf_counter()
    for _ in range(repeats):
        for fn in fns:
            baseline_pipeline(fn)
    baseline = (time.perf_counter() - start) / repeats

    start = time.perf_counter()
    for _ in range(repeats):
        for fn in fns:
            baseline_pipeline(fn)
            annotate_function(fn)  # runs the Pattern 1/2 analyses
    optimized = (time.perf_counter() - start) / repeats

    return CompileTiming(
        name=name, baseline_seconds=baseline, optimized_seconds=optimized
    )
