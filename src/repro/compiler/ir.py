"""A small SSA intermediate representation for the annotation compiler.

Section IV-B describes compiler passes that decide, per store site inside
a durable transaction, whether the store can become a ``storeT`` — either
log-free (Pattern 1: the target is memory allocated in or before the
transaction whose re-creation is reproducible) or lazily persistent
(Pattern 2: the value is rebuildable from other recoverable data).

This IR is deliberately minimal but faithful to what those analyses need:

* SSA values (every ``dest`` assigned once);
* ``Alloc``/``FreeMem`` to recognise Pattern 1 regions;
* ``Gep`` for address arithmetic, so derivation chains from allocations
  to store addresses are explicit;
* ``LoadMem``/``StoreMem`` with def-use visible through value names
  (the MemorySSA-lite dependence used by the passes);
* opaque ``Call`` results, which model control-dependent or semantically
  deep values (red-black colors, element counts): no dataflow fact can
  prove them recoverable, which is exactly why the paper's compiler
  misses them.

Store sites carry a ``site`` label and the ground-truth ``manual_hint``
the programmer used, so the benchmark can compare compiler output with
manual annotation (Figure 13, "16 out of 26 variables").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.common.errors import CompilerError
from repro.runtime.hints import Hint


@dataclass(frozen=True)
class Instr:
    """Base class of IR instructions."""


@dataclass(frozen=True)
class Const(Instr):
    """``dest = constant``"""

    dest: str
    value: int


@dataclass(frozen=True)
class Param(Instr):
    """``dest = function parameter`` (a durable root or plain argument)."""

    dest: str
    #: True when the parameter points into the persistent structure.
    persistent: bool = True


@dataclass(frozen=True)
class Alloc(Instr):
    """``dest = malloc(size)`` — fresh persistent memory."""

    dest: str
    size: int


@dataclass(frozen=True)
class FreeMem(Instr):
    """``free(ptr)`` — the region dies at commit."""

    ptr: str


@dataclass(frozen=True)
class Gep(Instr):
    """``dest = base + offset`` (address arithmetic)."""

    dest: str
    base: str
    offset: int


@dataclass(frozen=True)
class BinOp(Instr):
    """``dest = a <op> b`` (pure arithmetic)."""

    dest: str
    op: str
    a: str
    b: str


@dataclass(frozen=True)
class LoadMem(Instr):
    """``dest = *addr``"""

    dest: str
    addr: str


@dataclass(frozen=True)
class StoreMem(Instr):
    """``*addr = value`` — an annotatable site inside the transaction."""

    addr: str
    value: str
    site: str
    #: Ground truth: the hint the programmer placed here (NONE = plain).
    manual_hint: Hint = Hint.NONE


@dataclass(frozen=True)
class Call(Instr):
    """``dest = fn(args...)`` — opaque: result unprovable by dataflow."""

    dest: str
    fn: str
    args: "tuple[str, ...]" = ()


@dataclass
class Function:
    """A straight-line SSA rendering of one transaction body."""

    name: str
    instrs: List[Instr] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check SSA form: single assignment, no use before definition."""
        defined: Set[str] = set()
        for i, instr in enumerate(self.instrs):
            for used in _uses(instr):
                if used not in defined:
                    raise CompilerError(
                        f"{self.name}: use of undefined value {used!r} at {i}"
                    )
            dest = getattr(instr, "dest", None)
            if dest is not None:
                if dest in defined:
                    raise CompilerError(
                        f"{self.name}: SSA violation, {dest!r} assigned twice"
                    )
                defined.add(dest)

    def stores(self) -> List[StoreMem]:
        return [i for i in self.instrs if isinstance(i, StoreMem)]

    def defs(self) -> Dict[str, Instr]:
        """Map each SSA name to its defining instruction."""
        out: Dict[str, Instr] = {}
        for instr in self.instrs:
            dest = getattr(instr, "dest", None)
            if dest is not None:
                out[dest] = instr
        return out

    def annotated_sites(self) -> List[StoreMem]:
        """Sites the programmer annotated (the denominator of 16/26)."""
        return [s for s in self.stores() if s.manual_hint is not Hint.NONE]


def _uses(instr: Instr) -> List[str]:
    if isinstance(instr, Gep):
        return [instr.base]
    if isinstance(instr, BinOp):
        return [instr.a, instr.b]
    if isinstance(instr, LoadMem):
        return [instr.addr]
    if isinstance(instr, StoreMem):
        return [instr.addr, instr.value]
    if isinstance(instr, FreeMem):
        return [instr.ptr]
    if isinstance(instr, Call):
        return list(instr.args)
    return []


class IRBuilder:
    """Fluent builder with automatic SSA naming."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._instrs: List[Instr] = []
        self._counter = 0

    def _fresh(self, stem: str) -> str:
        self._counter += 1
        return f"%{stem}{self._counter}"

    def param(self, stem: str, *, persistent: bool = True) -> str:
        dest = self._fresh(stem)
        self._instrs.append(Param(dest, persistent=persistent))
        return dest

    def const(self, value: int, stem: str = "c") -> str:
        dest = self._fresh(stem)
        self._instrs.append(Const(dest, value))
        return dest

    def alloc(self, size: int, stem: str = "obj") -> str:
        dest = self._fresh(stem)
        self._instrs.append(Alloc(dest, size))
        return dest

    def free(self, ptr: str) -> None:
        self._instrs.append(FreeMem(ptr))

    def gep(self, base: str, offset: int, stem: str = "p") -> str:
        dest = self._fresh(stem)
        self._instrs.append(Gep(dest, base, offset))
        return dest

    def binop(self, op: str, a: str, b: str, stem: str = "t") -> str:
        dest = self._fresh(stem)
        self._instrs.append(BinOp(dest, op, a, b))
        return dest

    def load(self, addr: str, stem: str = "v") -> str:
        dest = self._fresh(stem)
        self._instrs.append(LoadMem(dest, addr))
        return dest

    def store(
        self, addr: str, value: str, site: str, manual_hint: Hint = Hint.NONE
    ) -> None:
        self._instrs.append(StoreMem(addr, value, site, manual_hint))

    def call(self, fn: str, *args: str, stem: str = "r") -> str:
        dest = self._fresh(stem)
        self._instrs.append(Call(dest, fn, tuple(args)))
        return dest

    def build(self) -> Function:
        return Function(self.name, self._instrs)
