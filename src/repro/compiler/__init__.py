"""The Section-IV annotation compiler: IR, dataflow passes, policies."""

from repro.compiler.analysis import FunctionAnalysis, SiteDecision, analyse
from repro.compiler.annotate import (
    AnnotationReport,
    SiteReport,
    annotate_all,
    annotate_function,
    derive_policy,
)
from repro.compiler.ir import Function, IRBuilder
from repro.compiler.programs import all_functions, kernel_functions
from repro.compiler.timing import CompileTiming, lower, measure_compile_time

__all__ = [
    "analyse",
    "FunctionAnalysis",
    "SiteDecision",
    "annotate_function",
    "annotate_all",
    "derive_policy",
    "AnnotationReport",
    "SiteReport",
    "Function",
    "IRBuilder",
    "kernel_functions",
    "all_functions",
    "CompileTiming",
    "measure_compile_time",
    "lower",
]
