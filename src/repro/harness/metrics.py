"""Derived metrics: speedups, traffic reductions, geometric means."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.harness.runner import RunResult


def speedup(baseline: RunResult, other: RunResult) -> float:
    """How much faster *other* is than *baseline* (>1 means faster)."""
    if other.cycles == 0:
        raise ZeroDivisionError("run with zero cycles")
    return baseline.cycles / other.cycles


def traffic_reduction(baseline: RunResult, other: RunResult) -> float:
    """Fraction of PM write traffic removed relative to *baseline*."""
    if baseline.pm_bytes == 0:
        raise ZeroDivisionError("baseline wrote no PM bytes")
    return 1.0 - other.pm_bytes / baseline.pm_bytes


def traffic_ratio(baseline: RunResult, other: RunResult) -> float:
    """``other`` traffic as a multiple of ``baseline`` traffic."""
    return other.pm_bytes / baseline.pm_bytes


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's 'on average' for speedups)."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)
