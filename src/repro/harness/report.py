"""Plain-text tables and series, in the shape the paper reports them.

Every benchmark prints one of these, so the regenerated figure data is
readable straight out of ``pytest benchmarks/ -s`` and lands verbatim in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Fixed-width table with a title rule."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: "Dict[str, Sequence[float]]",
) -> str:
    """A figure rendered as one row per series (x values as columns)."""
    columns = [x_label] + [_fmt(x) for x in xs]
    rows: List[List[object]] = []
    for name, values in series.items():
        rows.append([name] + [_fmt(v) for v in values])
    return format_table(title, columns, rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:,.0f}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,}"
    return str(value)
