"""Experiment harness: runners, metrics, report formatting."""

from repro.harness.figures import FIGURES, FigureResult, regenerate
from repro.harness.metrics import (
    geomean,
    mean,
    speedup,
    traffic_ratio,
    traffic_reduction,
)
from repro.harness.report import format_series, format_table
from repro.harness.runner import RunResult, cached_run, run_workload

__all__ = [
    "FIGURES",
    "FigureResult",
    "regenerate",
    "RunResult",
    "run_workload",
    "cached_run",
    "speedup",
    "traffic_reduction",
    "traffic_ratio",
    "geomean",
    "mean",
    "format_table",
    "format_series",
]
