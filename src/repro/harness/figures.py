"""Library-level regeneration of every figure in the paper's evaluation.

Each ``figureN`` function runs the sweep behind the corresponding figure
and returns a :class:`FigureResult` carrying both the machine-readable
series (``data``) and the formatted tables (``text``).  The benchmark
suite (``benchmarks/``) and the command line (``python -m repro``) are
thin wrappers around these functions, so downstream users can regenerate
any experiment programmatically:

    from repro.harness.figures import figure8
    result = figure8(num_ops=500)
    print(result.text)
    print(result.data["speedup"]["hashtable"]["SLPMT"])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.compiler.annotate import derive_policy
from repro.compiler.programs import kernel_functions
from repro.compiler.timing import measure_compile_time
from repro.harness.metrics import geomean, speedup, traffic_reduction
from repro.harness.report import format_series, format_table
from repro.harness.runner import cached_run
from repro.runtime.hints import MANUAL
from repro.workloads import KERNELS, PMKV

#: Scheme order used by the Figure 8/14 tables.
SCHEMES = ["FG", "FG+LG", "FG+LZ", "SLPMT", "ATOM", "EDE"]

#: Value-size sweep (Figures 10 and 11).
VALUE_SIZES = [16, 32, 64, 128, 256]

#: PM write-latency sweep in ns (Figure 12).
LATENCIES_NS = [500.0, 1100.0, 1700.0, 2300.0]


@dataclass
class FigureResult:
    """One regenerated figure: formatted text plus raw series."""

    name: str
    title: str
    text: str
    data: Dict[str, Any] = field(default_factory=dict)


def figure8(num_ops: int = 1000, value_bytes: int = 256) -> FigureResult:
    """Kernel speedups and traffic reductions over the FG baseline."""
    res = {
        (w, s): cached_run(w, s, num_ops=num_ops, value_bytes=value_bytes)
        for w in KERNELS
        for s in SCHEMES
    }
    speedups: Dict[str, Dict[str, float]] = {}
    reductions: Dict[str, Dict[str, float]] = {}
    for w in KERNELS:
        base = res[(w, "FG")]
        speedups[w] = {s: speedup(base, res[(w, s)]) for s in SCHEMES[1:]}
        reductions[w] = {
            s: traffic_reduction(base, res[(w, s)]) for s in SCHEMES[1:]
        }
    geo = {
        s: geomean(speedups[w][s] for w in KERNELS) for s in SCHEMES[1:]
    }

    left_rows = [[w] + [speedups[w][s] for s in SCHEMES[1:]] for w in KERNELS]
    left_rows.append(["geomean"] + [geo[s] for s in SCHEMES[1:]])
    right_rows = [
        [w] + [100.0 * reductions[w][s] for s in SCHEMES[1:]] for w in KERNELS
    ]
    text = (
        format_table(
            "Figure 8 (left): speedup over the FG baseline",
            ["workload"] + SCHEMES[1:],
            left_rows,
        )
        + "\n\n"
        + format_table(
            "Figure 8 (right): PM write-traffic reduction over FG (%)",
            ["workload"] + SCHEMES[1:],
            right_rows,
        )
    )
    return FigureResult(
        name="fig08",
        title="Figure 8: kernel benchmarks",
        text=text,
        data={"speedup": speedups, "traffic_reduction": reductions, "geomean": geo},
    )


def figure9(num_ops: int = 1000, value_bytes: int = 256) -> FigureResult:
    """Line-granularity logging: SLPMT-line vs FG-line."""
    speedups: Dict[str, float] = {}
    extra_traffic: Dict[str, float] = {}
    for w in KERNELS:
        base = cached_run(w, "FG-line", num_ops=num_ops, value_bytes=value_bytes)
        full = cached_run(w, "SLPMT-line", num_ops=num_ops, value_bytes=value_bytes)
        speedups[w] = speedup(base, full)
        extra_traffic[w] = base.pm_bytes / full.pm_bytes - 1.0
    rows = [[w, speedups[w], 100.0 * extra_traffic[w]] for w in KERNELS]
    rows.append(
        ["geomean/avg", geomean(speedups.values()),
         100.0 * sum(extra_traffic.values()) / len(extra_traffic)]
    )
    return FigureResult(
        name="fig09",
        title="Figure 9: line-granularity logging",
        text=format_table(
            "Figure 9: SLPMT-line speedup over FG-line; FG-line extra traffic (%)",
            ["workload", "speedup", "extra traffic %"],
            rows,
        ),
        data={"speedup": speedups, "extra_traffic": extra_traffic},
    )


def figure10(num_ops: int = 1000) -> FigureResult:
    """Speedup sensitivity to the value size."""
    series: Dict[str, List[float]] = {}
    for w in KERNELS:
        series[w] = [
            speedup(
                cached_run(w, "FG", num_ops=num_ops, value_bytes=vb),
                cached_run(w, "SLPMT", num_ops=num_ops, value_bytes=vb),
            )
            for vb in VALUE_SIZES
        ]
    series["geomean"] = [
        geomean(series[w][i] for w in KERNELS) for i in range(len(VALUE_SIZES))
    ]
    return FigureResult(
        name="fig10",
        title="Figure 10: value-size sensitivity (speedup)",
        text=format_series(
            "Figure 10: SLPMT speedup over FG vs value size (bytes)",
            "value",
            VALUE_SIZES,
            series,
        ),
        data={"value_sizes": VALUE_SIZES, "speedup": series},
    )


def figure11(num_ops: int = 1000) -> FigureResult:
    """Traffic-saving sensitivity to the value size."""
    saved_kib: Dict[str, List[float]] = {}
    relative: Dict[str, List[float]] = {}
    for w in KERNELS:
        saved_kib[w] = []
        relative[w] = []
        for vb in VALUE_SIZES:
            base = cached_run(w, "FG", num_ops=num_ops, value_bytes=vb)
            full = cached_run(w, "SLPMT", num_ops=num_ops, value_bytes=vb)
            saved_kib[w].append((base.pm_bytes - full.pm_bytes) / 1024.0)
            relative[w].append(traffic_reduction(base, full))
    text = (
        format_series(
            "Figure 11: PM write traffic saved by SLPMT vs value size (KiB)",
            "value",
            VALUE_SIZES,
            saved_kib,
        )
        + "\n\n"
        + format_series(
            "Figure 11 (relative): traffic reduction (%)",
            "value",
            VALUE_SIZES,
            {w: [100.0 * r for r in rs] for w, rs in relative.items()},
        )
    )
    return FigureResult(
        name="fig11",
        title="Figure 11: value-size sensitivity (traffic)",
        text=text,
        data={"value_sizes": VALUE_SIZES, "saved_kib": saved_kib,
              "relative": relative},
    )


def figure12(num_ops: int = 1000, value_bytes: int = 256) -> FigureResult:
    """Speedup sensitivity to the PM write latency."""
    series: Dict[str, List[float]] = {}
    for w in KERNELS:
        series[w] = [
            speedup(
                cached_run(w, "FG", num_ops=num_ops, value_bytes=value_bytes,
                           pm_write_latency_ns=lat),
                cached_run(w, "SLPMT", num_ops=num_ops, value_bytes=value_bytes,
                           pm_write_latency_ns=lat),
            )
            for lat in LATENCIES_NS
        ]
    return FigureResult(
        name="fig12",
        title="Figure 12: write-latency sensitivity",
        text=format_series(
            "Figure 12: SLPMT speedup over FG vs PM write latency (ns)",
            "latency",
            LATENCIES_NS,
            series,
        ),
        data={"latencies_ns": LATENCIES_NS, "speedup": series},
    )


def figure13(num_ops: int = 1000, value_bytes: int = 256) -> FigureResult:
    """Compiler-inserted vs manual annotations + compile time."""
    fns_by_kernel = kernel_functions()
    all_fns = [fn for fns in fns_by_kernel.values() for fn in fns]
    policy, report = derive_policy(all_fns)

    manual: Dict[str, float] = {}
    compiled: Dict[str, float] = {}
    for w in KERNELS:
        base = cached_run(w, "FG", num_ops=num_ops, value_bytes=value_bytes)
        manual[w] = speedup(
            base, cached_run(w, "SLPMT", num_ops=num_ops, value_bytes=value_bytes)
        )
        compiled[w] = speedup(
            base,
            cached_run(w, "SLPMT", num_ops=num_ops, value_bytes=value_bytes,
                       policy=policy),
        )
    rows = [[w, manual[w], compiled[w]] for w in KERNELS]
    rows.append(["geomean", geomean(manual.values()), geomean(compiled.values())])

    timings = {
        kernel: measure_compile_time(kernel, fns, repeats=100)
        for kernel, fns in fns_by_kernel.items()
    }
    timing_rows = [
        [k, t.baseline_seconds * 1e6, t.optimized_seconds * 1e6, 100.0 * t.overhead]
        for k, t in timings.items()
    ]
    text = (
        format_table(
            "Figure 13 (left): speedup over FG, manual vs compiler annotation",
            ["workload", "manual", "compiler"],
            rows,
        )
        + "\n\n"
        + format_table(
            "Figure 13 (right): compile time without/with the analyses",
            ["kernel", "baseline (us)", "with passes (us)", "overhead %"],
            timing_rows,
        )
        + "\n\n"
        + (
            f"variable discovery: compiler found {report.found_count} of "
            f"{report.total_annotated} manually annotated variables "
            "(paper: 16 of 26)"
        )
    )
    return FigureResult(
        name="fig13",
        title="Figure 13: compiler effectiveness",
        text=text,
        data={
            "manual": manual,
            "compiler": compiled,
            "found": report.found_count,
            "annotated": report.total_annotated,
            "timings": timings,
            "policy": policy,
            "report": report,
        },
    )


def figure14(num_ops: int = 1000) -> FigureResult:
    """The PMKV application at 256-byte and 16-byte values."""
    data: Dict[str, Any] = {}
    parts: List[str] = []
    for vb in (256, 16):
        speedups: Dict[str, Dict[str, float]] = {}
        reductions: Dict[str, float] = {}
        rows = []
        for w in PMKV:
            base = cached_run(w, "FG", num_ops=num_ops, value_bytes=vb)
            speedups[w] = {
                s: speedup(base, cached_run(w, s, num_ops=num_ops, value_bytes=vb))
                for s in SCHEMES[1:]
            }
            reductions[w] = traffic_reduction(
                base, cached_run(w, "SLPMT", num_ops=num_ops, value_bytes=vb)
            )
            rows.append(
                [w]
                + [speedups[w][s] for s in SCHEMES[1:]]
                + [100.0 * reductions[w]]
            )
        parts.append(
            format_table(
                f"Figure 14: PMKV speedup over FG ({vb} B values); "
                "last column: SLPMT traffic reduction %",
                ["workload"] + SCHEMES[1:] + ["traffic red. %"],
                rows,
            )
        )
        data[f"speedup_{vb}"] = speedups
        data[f"traffic_reduction_{vb}"] = reductions
    return FigureResult(
        name="fig14",
        title="Figure 14: PMKV application",
        text="\n\n".join(parts),
        data=data,
    )


#: Registry for the CLI: figure name -> builder.
FIGURES = {
    "fig08": figure8,
    "fig09": figure9,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    "fig13": figure13,
    "fig14": figure14,
}


def regenerate(name: str, num_ops: int = 1000) -> FigureResult:
    """Regenerate one figure by name ("fig08" .. "fig14")."""
    try:
        builder = FIGURES[name]
    except KeyError:
        raise KeyError(f"unknown figure {name!r}; known: {sorted(FIGURES)}") from None
    return builder(num_ops=num_ops)
