"""Experiment runner: one (workload, scheme, knobs) simulation per call.

Every figure in the evaluation is a sweep over this function.  Results
are memoised per process — several figures share corner points (e.g. the
256-byte kernel runs appear in Figures 8, 10, 11 and 12), so the bench
suite does each unique simulation once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.config import DEFAULT_CONFIG, SystemConfig
from repro.common.stats import SimStats
from repro.core.machine import Machine
from repro.core.schemes import Scheme, scheme_by_name
from repro.runtime.hints import MANUAL, AnnotationPolicy
from repro.runtime.ptx import PTx
from repro.workloads import WORKLOADS, generate_load, generate_streams, replay
from repro.workloads.shared import replay_contention


@dataclass(frozen=True)
class RunResult:
    """Headline metrics of one simulated benchmark run."""

    workload: str
    scheme: str
    policy: str
    value_bytes: int
    num_ops: int
    cycles: int
    pm_bytes: int
    pm_log_bytes: int
    pm_data_bytes: int
    stats: SimStats

    @property
    def cycles_per_op(self) -> float:
        return self.cycles / self.num_ops


def run_workload(
    workload: str,
    scheme: Scheme,
    *,
    policy: AnnotationPolicy = MANUAL,
    value_bytes: int = 256,
    num_ops: int = 1000,
    config: SystemConfig = DEFAULT_CONFIG,
    seed: int = 2023,
    verify: bool = True,
    tracer=None,
    profiler=None,
) -> RunResult:
    """Simulate a ycsb-load run of *workload* under *scheme*.

    The annotation *policy* decides which storeT hints the program uses;
    the scheme independently decides which storeT semantics the hardware
    honours (FG/ATOM/EDE ignore them entirely), mirroring how the same
    annotated binary runs on every hardware configuration in the paper.

    *tracer* / *profiler* attach observability to the machine for this
    run; both are passive, so the returned metrics are identical with
    or without them (the caller keeps the references for reporting).
    """
    machine = Machine(scheme, config)
    if tracer is not None:
        machine.tracer = tracer
    if profiler is not None:
        profiler.bind(machine.now)
        machine.profiler = profiler
    rt = PTx(machine, policy=policy)
    wl = WORKLOADS[workload](rt, value_bytes=value_bytes)
    ops = generate_load(num_ops, value_bytes=value_bytes, seed=seed)
    replay(wl, ops)
    machine.finalize()
    if verify:
        wl.verify()
    stats = machine.stats.copy()
    return RunResult(
        workload=workload,
        scheme=scheme.name,
        policy=policy.name,
        value_bytes=value_bytes,
        num_ops=num_ops,
        cycles=machine.now,
        pm_bytes=stats.pm_bytes_written,
        pm_log_bytes=stats.pm_log_bytes_written,
        pm_data_bytes=stats.pm_data_bytes_written,
        stats=stats,
    )


@dataclass(frozen=True)
class ContentionResult:
    """Headline metrics of one shared-key contention run (N cores)."""

    workload: str
    scheme: str
    cores: int
    theta: float
    value_bytes: int
    ops_per_core: int
    num_keys: int
    cycles: int
    pm_bytes: int
    conflicts: int
    aborts: int
    commits: int
    stats: SimStats

    @property
    def cycles_per_op(self) -> float:
        return self.cycles / (self.ops_per_core * self.cores)


def run_contention(
    workload: str,
    scheme: "Scheme | str",
    *,
    cores: int = 2,
    theta: float = 0.0,
    ops_per_core: int = 100,
    num_keys: int = 32,
    value_bytes: int = 256,
    config: SystemConfig = DEFAULT_CONFIG,
    seed: int = 2023,
    verify: bool = True,
    max_attempts: Optional[int] = None,
) -> ContentionResult:
    """Simulate a shared-key contention run: *cores* workers hammer one
    durable *workload* instance with zipfian(θ) key skew.

    *max_attempts* bounds each operation's total transaction attempts
    (forwarded to :func:`~repro.workloads.shared.replay_contention`,
    default 512).  The 1.x-era ``max_retries`` alias was removed with
    schema_version 2 as its deprecation warning scheduled; passing it
    is now a :class:`TypeError` like any unknown keyword.

    The whole run — streams, interleaving, conflicts, aborts, backoff —
    is a pure function of ``(workload, scheme, cores, theta, seed)``
    plus the size knobs, so cells computed in different processes (or on
    different days) agree bit-for-bit; the bench grid and the fuzz
    campaign both lean on that.

    ``cycles`` is the *sum* of per-core cycle counters (the interleaving
    is functional, not a timing model — see
    :mod:`repro.multicore.system`), which still moves the right way
    under contention: aborted work and backoff waits inflate it.
    """
    from repro.multicore.system import MultiCoreSystem

    if max_attempts is None:
        max_attempts = 512

    scheme = scheme_by_name(scheme) if isinstance(scheme, str) else scheme
    system = MultiCoreSystem(cores, scheme, config, seed=seed)
    subject = WORKLOADS[workload](system.runtimes[0], value_bytes=value_bytes)
    streams = generate_streams(
        cores,
        ops_per_core,
        theta=theta,
        num_keys=num_keys,
        value_words=subject.value_words,
        seed=seed,
    )
    replay_contention(system, subject, streams, max_attempts=max_attempts)
    system.fence_all()
    system.finalize_all()
    if verify:
        subject.verify(durable=True)
    stats = system.merged_stats()
    return ContentionResult(
        workload=workload,
        scheme=scheme.name,
        cores=cores,
        theta=theta,
        value_bytes=value_bytes,
        ops_per_core=ops_per_core,
        num_keys=num_keys,
        cycles=sum(core.now for core in system.cores),
        pm_bytes=stats.pm_bytes_written,
        conflicts=system.conflicts,
        aborts=stats.aborts,
        commits=stats.commits,
        stats=stats,
    )


def _compute(
    workload: str,
    scheme_name: str,
    policy_key: "tuple",
    value_bytes: int,
    num_ops: int,
    pm_write_latency_ns: float,
    num_tx_ids: int,
    wpq_bytes: int,
    seed: int,
) -> RunResult:
    policy = AnnotationPolicy(name=policy_key[0], honored=frozenset(policy_key[1]))
    config = DEFAULT_CONFIG.with_pm_write_latency(pm_write_latency_ns)
    if num_tx_ids != DEFAULT_CONFIG.num_tx_ids:
        config = config.with_num_tx_ids(num_tx_ids)
    if wpq_bytes != DEFAULT_CONFIG.pm.wpq_bytes:
        config = config.with_wpq_bytes(wpq_bytes)
    return run_workload(
        workload,
        scheme_by_name(scheme_name),
        policy=policy,
        value_bytes=value_bytes,
        num_ops=num_ops,
        config=config,
        seed=seed,
    )


class _RunMemo:
    """``lru_cache``-compatible memo with a seeding hook.

    The parallel grid warmer (:mod:`repro.parallel`) computes
    :class:`RunResult` values in worker processes and injects them into
    the parent's memo via :meth:`seed`; ``functools.lru_cache`` has no
    insertion API, hence this hand-rolled equivalent.  ``cache_clear``
    keeps the surface tests rely on.
    """

    def __init__(self, fn) -> None:
        self._fn = fn
        self._cache: dict = {}

    def __call__(self, *key) -> RunResult:
        try:
            return self._cache[key]
        except KeyError:
            result = self._fn(*key)
            self._cache[key] = result
            return result

    def cache_clear(self) -> None:
        self._cache.clear()

    def seed(self, key: "Tuple", result: RunResult) -> None:
        """Insert a precomputed result (first writer wins)."""
        self._cache.setdefault(tuple(key), result)


_cached = _RunMemo(_compute)


def cache_key(
    workload: str,
    scheme: "Scheme | str",
    *,
    policy: AnnotationPolicy = MANUAL,
    value_bytes: int = 256,
    num_ops: int = 1000,
    pm_write_latency_ns: Optional[float] = None,
    num_tx_ids: Optional[int] = None,
    wpq_bytes: Optional[int] = None,
    seed: int = 2023,
) -> "Tuple":
    """The memo key :func:`cached_run` files a run under.

    Exposed so the parallel warmer can ship the same scalars to worker
    processes and seed the parent memo with their results.
    """
    scheme_name = scheme if isinstance(scheme, str) else scheme.name
    policy_key = (policy.name, tuple(sorted(policy.honored, key=lambda h: h.value)))
    return (
        workload,
        scheme_name,
        policy_key,
        value_bytes,
        num_ops,
        pm_write_latency_ns
        if pm_write_latency_ns is not None
        else DEFAULT_CONFIG.pm.write_latency_ns,
        num_tx_ids if num_tx_ids is not None else DEFAULT_CONFIG.num_tx_ids,
        wpq_bytes if wpq_bytes is not None else DEFAULT_CONFIG.pm.wpq_bytes,
        seed,
    )


def cached_run(
    workload: str,
    scheme: "Scheme | str",
    *,
    policy: AnnotationPolicy = MANUAL,
    value_bytes: int = 256,
    num_ops: int = 1000,
    pm_write_latency_ns: Optional[float] = None,
    num_tx_ids: Optional[int] = None,
    wpq_bytes: Optional[int] = None,
    seed: int = 2023,
) -> RunResult:
    """Memoised :func:`run_workload` over the sweepable knobs."""
    return _cached(
        *cache_key(
            workload,
            scheme,
            policy=policy,
            value_bytes=value_bytes,
            num_ops=num_ops,
            pm_write_latency_ns=pm_write_latency_ns,
            num_tx_ids=num_tx_ids,
            wpq_bytes=wpq_bytes,
            seed=seed,
        )
    )
