"""Instruction sequences and a tiny builder for hand-written programs.

Workloads normally emit instructions through :class:`repro.runtime.PTx`,
but unit tests and the compiler benefit from an explicit program object
that can be executed, sliced for crash injection, and pretty-printed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List

from repro.common.errors import IsaError
from repro.isa.instructions import (
    Fence,
    Instruction,
    Load,
    Store,
    StoreT,
    TxAbort,
    TxBegin,
    TxEnd,
)


@dataclass
class Program:
    """An ordered list of instructions with convenience constructors."""

    instructions: List[Instruction] = field(default_factory=list)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def extend(self, instructions: Iterable[Instruction]) -> None:
        self.instructions.extend(instructions)

    def prefix(self, length: int) -> "Program":
        """Return the first *length* instructions (for crash injection)."""
        return Program(list(self.instructions[:length]))

    def transaction_spans(self) -> "List[tuple[int, int]]":
        """Return ``(begin_index, end_index)`` pairs of each transaction.

        ``end_index`` points at the matching :class:`TxEnd` / :class:`TxAbort`.
        Raises :class:`IsaError` on unbalanced delimiters.
        """
        spans = []
        open_at = None
        for i, instr in enumerate(self.instructions):
            if isinstance(instr, TxBegin):
                if open_at is not None:
                    raise IsaError(f"nested TxBegin at index {i}")
                open_at = i
            elif isinstance(instr, (TxEnd, TxAbort)):
                if open_at is None:
                    raise IsaError(f"TxEnd without TxBegin at index {i}")
                spans.append((open_at, i))
                open_at = None
        if open_at is not None:
            raise IsaError(f"unterminated transaction opened at index {open_at}")
        return spans

    def describe(self) -> str:
        """Return a one-instruction-per-line human-readable listing."""
        lines = []
        for i, instr in enumerate(self.instructions):
            lines.append(f"{i:5d}  {_format(instr)}")
        return "\n".join(lines)


def _format(instr: Instruction) -> str:
    if isinstance(instr, Load):
        return f"load   [{instr.addr:#010x}]"
    if isinstance(instr, StoreT):
        flags = f"lazy={int(instr.lazy)} log_free={int(instr.log_free)}"
        return f"storeT [{instr.addr:#010x}] <- {instr.value} ({flags})"
    if isinstance(instr, Store):
        return f"store  [{instr.addr:#010x}] <- {instr.value}"
    if isinstance(instr, TxBegin):
        return "tx_begin"
    if isinstance(instr, TxEnd):
        return "tx_end"
    if isinstance(instr, TxAbort):
        return "tx_abort"
    if isinstance(instr, Fence):
        return "fence"
    return repr(instr)


class ProgramBuilder:
    """Fluent helper for composing small programs in tests and examples."""

    def __init__(self) -> None:
        self._program = Program()

    def load(self, addr: int) -> "ProgramBuilder":
        self._program.append(Load(addr))
        return self

    def store(self, addr: int, value: int) -> "ProgramBuilder":
        self._program.append(Store(addr, value))
        return self

    def storeT(
        self, addr: int, value: int, *, lazy: bool = False, log_free: bool = False
    ) -> "ProgramBuilder":
        self._program.append(StoreT(addr, value, lazy=lazy, log_free=log_free))
        return self

    def tx_begin(self) -> "ProgramBuilder":
        self._program.append(TxBegin())
        return self

    def tx_end(self) -> "ProgramBuilder":
        self._program.append(TxEnd())
        return self

    def tx_abort(self) -> "ProgramBuilder":
        self._program.append(TxAbort())
        return self

    def fence(self) -> "ProgramBuilder":
        self._program.append(Fence())
        return self

    def build(self) -> Program:
        return self._program
