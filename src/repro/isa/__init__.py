"""The simulated instruction set, including the paper's new ``storeT``."""

from repro.isa.instructions import (
    Fence,
    Instruction,
    Load,
    Store,
    StoreT,
    TxAbort,
    TxBegin,
    TxEnd,
    table1_bits,
)
from repro.isa.program import Program, ProgramBuilder

__all__ = [
    "Instruction",
    "Load",
    "Store",
    "StoreT",
    "TxBegin",
    "TxEnd",
    "TxAbort",
    "Fence",
    "table1_bits",
    "Program",
    "ProgramBuilder",
]
