"""Instruction set for the SLPMT machine.

The simulated ISA is the small subset that matters for persistent-memory
transactions: word-granularity ``load``/``store``, the paper's new
``storeT`` (Figure 2), transaction delimiters, and an explicit abort.

All memory operands are word-aligned byte addresses into the persistent
address space.  Values are arbitrary Python integers treated as opaque
64-bit word contents (the simulator never does arithmetic on them, so no
masking is required; workloads store ints and object references).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import units
from repro.common.errors import AlignmentError, IsaError


def _check_word_operand(addr: int) -> None:
    # One inlined test on the fast path (8-byte words); the branches
    # re-derive which rule failed only when raising.
    if addr < 0 or addr & (units.WORD_BYTES - 1):
        if addr < 0:
            raise IsaError(f"negative address {addr:#x}")
        raise AlignmentError(f"address {addr:#x} is not word-aligned")


@dataclass(frozen=True)
class Instruction:
    """Marker base class for everything the machine executes."""


@dataclass(frozen=True)
class Load(Instruction):
    """Read one word from persistent memory."""

    addr: int

    def __post_init__(self) -> None:
        _check_word_operand(self.addr)


@dataclass(frozen=True)
class Store(Instruction):
    """Ordinary transactional store: logged and eagerly persisted.

    Per Table I, a plain ``store`` sets both the persist bit and the log
    bit of the target cache line (creating an undo record if needed).
    """

    addr: int
    value: int

    def __post_init__(self) -> None:
        _check_word_operand(self.addr)


@dataclass(frozen=True)
class StoreT(Instruction):
    """The paper's new store (Figure 2): ``storeT %reg, addr, lazy, log-free``.

    Two immediate flags modulate the persist and log bits (Table I):

    ========  ==========  ===========  =========
    ``lazy``  ``log_free``  persist bit  log bit
    ========  ==========  ===========  =========
    0         0           1            1
    0         1           1            0
    1         1           0            0
    1         0           0            1
    ========  ==========  ===========  =========

    A hardware-level *disable* knob (the paper's second flag use) turns
    every ``storeT`` back into a plain ``store``; the machine implements
    that by ignoring the flags when the scheme disables the feature.
    """

    addr: int
    value: int
    lazy: bool = False
    log_free: bool = False

    def __post_init__(self) -> None:
        _check_word_operand(self.addr)

    @property
    def persist_bit(self) -> bool:
        """Persist-bit effect per Table I (eager persistence unless lazy)."""
        return not self.lazy

    @property
    def log_bit(self) -> bool:
        """Log-bit effect per Table I (log unless log-free)."""
        return not self.log_free


@dataclass(frozen=True)
class TxBegin(Instruction):
    """Open a durable transaction."""


@dataclass(frozen=True)
class TxEnd(Instruction):
    """Commit the current durable transaction."""


@dataclass(frozen=True)
class TxAbort(Instruction):
    """Abort the current transaction (Section V-B), rolling back updates."""


@dataclass(frozen=True)
class Fence(Instruction):
    """Drain outstanding persists (used by non-transactional code paths)."""


def table1_bits(instruction: Instruction) -> "tuple[bool, bool]":
    """Return the ``(persist_bit, log_bit)`` effect of a store instruction.

    This is the executable form of Table I.  Raises :class:`IsaError` for
    non-store instructions.
    """
    if isinstance(instruction, StoreT):
        return instruction.persist_bit, instruction.log_bit
    if isinstance(instruction, Store):
        return True, True
    raise IsaError(f"{type(instruction).__name__} has no Table-I semantics")
