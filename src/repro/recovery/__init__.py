"""Crash simulation and post-crash recovery."""

from repro.recovery.crashsim import CrashOutcome, count_durability_points, run_with_crash
from repro.recovery.engine import PmView, RecoveryHook, RecoveryReport, recover

__all__ = [
    "recover",
    "RecoveryReport",
    "RecoveryHook",
    "PmView",
    "run_with_crash",
    "CrashOutcome",
    "count_durability_points",
]
