"""Crash-injection harness used by tests and property-based checks.

Runs a program on a machine, injecting a power failure either at an
instruction boundary or at the N-th durability event (which lands inside
a commit sequence), then performs recovery and hands back the durable
state for invariant checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.common.errors import PowerFailure
from repro.core.machine import Machine
from repro.core.ordering import LoggingMode
from repro.isa.program import Program
from repro.recovery.engine import RecoveryHook, RecoveryReport, recover


@dataclass
class CrashOutcome:
    """Result of one crash-inject-and-recover experiment."""

    crashed: bool
    report: Optional[RecoveryReport]
    machine: Machine

    @property
    def pm(self):  # noqa: ANN201 - convenience accessor
        return self.machine.pm


def run_with_crash(
    machine: Machine,
    program: Program,
    *,
    crash_after_instructions: Optional[int] = None,
    crash_after_persists: Optional[int] = None,
    hooks: "List[RecoveryHook] | None" = None,
) -> CrashOutcome:
    """Run *program* with the requested crash point, then recover.

    If both crash knobs are None the program runs to completion and no
    recovery is performed (``crashed=False``).
    """
    if crash_after_persists is not None:
        machine.schedule_crash_after_persists(crash_after_persists)
    finished = machine.run(
        program, crash_after_instructions=crash_after_instructions
    )
    if finished:
        machine.cancel_scheduled_crash()
        return CrashOutcome(crashed=False, report=None, machine=machine)
    report = recover(
        machine.pm, mode=machine.scheme.logging_mode, hooks=hooks
    )
    return CrashOutcome(crashed=True, report=report, machine=machine)


@dataclass
class DryRunStats:
    """What a clean (crash-free) execution makes sweepable.

    ``durability_events`` bounds the ``crash_after_persists`` sweep and
    ``instructions`` bounds the instruction-boundary sweep; the machine
    is kept so callers can read further statistics off it.
    """

    machine: Machine
    durability_events: int
    instructions: int


def dry_run(machine_factory, body: "Callable[[Machine], None]") -> DryRunStats:
    """Run *body* to completion on a fresh machine, with no crash
    scheduled, and report the crash-point totals.

    This is the single enumeration pathway shared by
    :func:`count_durability_points` and the fuzz campaign driver: both
    the Program-based harness and the eager PTx workloads funnel through
    it, so their crash-point counts are measured identically (straight
    off the WPQ insert and instruction counters).
    """
    machine: Machine = machine_factory()
    body(machine)
    return DryRunStats(
        machine=machine,
        durability_events=machine.wpq.total_inserts,
        instructions=machine.stats.instructions,
    )


def count_durability_points(machine_factory, program: Program) -> int:
    """Run *program* on a fresh machine and count its durability events.

    Useful for sweeping ``crash_after_persists`` over every possible
    mid-commit crash point: build the machine with *machine_factory*,
    run cleanly, and read the WPQ insert count.
    """
    return dry_run(machine_factory, lambda m: m.run(program)).durability_events


class InstructionLimit:
    """Checkpoint callback crashing at the N-th memory instruction.

    The eager-execution counterpart of ``Machine.run(program,
    crash_after_instructions=N)``: PTx-driven workloads never go through
    :meth:`Machine.run`, so instruction-boundary crash injection hooks
    the per-instruction ``machine.checkpoint`` callback instead.
    Install after setup to count only the instructions under test.
    """

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.seen = 0

    def __call__(self) -> None:
        if self.seen >= self.limit:
            raise PowerFailure("instruction-boundary crash")
        self.seen += 1
