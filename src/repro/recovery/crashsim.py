"""Crash-injection harness used by tests and property-based checks.

Runs a program on a machine, injecting a power failure either at an
instruction boundary or at the N-th durability event (which lands inside
a commit sequence), then performs recovery and hands back the durable
state for invariant checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.machine import Machine
from repro.core.ordering import LoggingMode
from repro.isa.program import Program
from repro.recovery.engine import RecoveryHook, RecoveryReport, recover


@dataclass
class CrashOutcome:
    """Result of one crash-inject-and-recover experiment."""

    crashed: bool
    report: Optional[RecoveryReport]
    machine: Machine

    @property
    def pm(self):  # noqa: ANN201 - convenience accessor
        return self.machine.pm


def run_with_crash(
    machine: Machine,
    program: Program,
    *,
    crash_after_instructions: Optional[int] = None,
    crash_after_persists: Optional[int] = None,
    hooks: "List[RecoveryHook] | None" = None,
) -> CrashOutcome:
    """Run *program* with the requested crash point, then recover.

    If both crash knobs are None the program runs to completion and no
    recovery is performed (``crashed=False``).
    """
    if crash_after_persists is not None:
        machine.schedule_crash_after_persists(crash_after_persists)
    finished = machine.run(
        program, crash_after_instructions=crash_after_instructions
    )
    if finished:
        machine.cancel_scheduled_crash()
        return CrashOutcome(crashed=False, report=None, machine=machine)
    report = recover(
        machine.pm, mode=machine.scheme.logging_mode, hooks=hooks
    )
    return CrashOutcome(crashed=True, report=report, machine=machine)


def count_durability_points(machine_factory, program: Program) -> int:
    """Run *program* on a fresh machine and count its durability events.

    Useful for sweeping ``crash_after_persists`` over every possible
    mid-commit crash point: build the machine with *machine_factory*,
    run cleanly, and read the WPQ insert count.
    """
    machine: Machine = machine_factory()
    machine.run(program)
    return machine.wpq.total_inserts
