"""Post-crash recovery: hardened log replay plus application hooks.

Recovery after a power failure happens in two layers, mirroring the
paper's model:

1. **Log replay** (this module, hardware/kernel equivalent): for undo
   logging, every transaction that has log records but no commit marker
   was interrupted, so its undo records are applied in reverse to restore
   pre-transaction values.  For redo logging, transactions *with* a
   commit marker re-apply their records forward (their in-place data may
   not have fully persisted); uncommitted records are discarded.

2. **Application recovery** (Section IV): log-free data is repaired by
   user/compiler-generated code — a garbage collector reclaims objects
   allocated by interrupted transactions (Pattern 1), and lazily
   persistent data is rebuilt from other durable state (Pattern 2).
   Workloads register such code as :class:`RecoveryHook` objects.

Unlike the original engine, replay no longer trusts the media.  The log
stream is parsed *tolerantly* (torn tails and checksum-failing entries
are classified, not crashed on) and a **recovery policy** decides what
to do with damage:

* ``"strict"`` — refuse: raise :class:`~repro.common.errors.TornLogError`
  for a torn tail, :class:`~repro.common.errors.LogChecksumError` for a
  corrupt entry.  Nothing is mutated before the raise, so the caller can
  retry in salvage mode.
* ``"salvage"`` — continue: a torn tail is dropped (its append never
  became durable, so the data it guarded never left the cache either); a
  corrupt entry is quarantined — never applied — and its transaction is
  rolled back from its *surviving* records (undo) or excluded from
  replay (redo), with the whole disposition written into the report.

Ordering is hardened too: the log is cleared only **after** every
application hook succeeded, so a hook failure leaves the durable log
intact and ``recover()`` can simply be run again — recovery is
idempotent (``recover(); recover()`` ≡ ``recover()``), which the
property suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

from repro.common import units
from repro.common.errors import LogChecksumError, SimulationError, TornLogError
from repro.core.ordering import LoggingMode
from repro.mem.logregion import TWOPC_KINDS, ParsedLog
from repro.mem.pm import DurableLogEntry, PersistentMemory

#: Valid recovery policies.
POLICIES = ("strict", "salvage")


class PmView:
    """Word-level durable memory access handed to application recovery.

    Recovery code must only see what survived the crash, so it operates
    on the persistent backing store directly (never on caches, which are
    gone).
    """

    def __init__(self, pm: PersistentMemory) -> None:
        self._pm = pm

    def read(self, addr: int) -> int:
        return self._pm.read_word(addr)

    def write(self, addr: int, value: int) -> None:
        self._pm.write_word(addr, value)


class RecoveryHook(Protocol):
    """Application-level recovery callback (Pattern 1 / Pattern 2 code)."""

    def recover(self, view: PmView) -> None:
        """Repair log-free and rebuild lazily persistent data."""


@dataclass
class RecoveryReport:
    """What structural recovery did, and what damage it navigated."""

    mode: LoggingMode = LoggingMode.UNDO
    policy: str = "strict"
    log_version: int = 0
    rolled_back_tx_seqs: List[int] = field(default_factory=list)
    replayed_tx_seqs: List[int] = field(default_factory=list)
    words_restored: int = 0
    hooks_run: int = 0
    #: Damage accounting (salvage mode; strict raises instead).
    torn_entries: int = 0
    corrupt_entries: int = 0
    salvaged_tx_seqs: List[int] = field(default_factory=list)
    #: Final fate of every transaction seen in the log:
    #: ``committed`` / ``aborted`` (resolved by a marker),
    #: ``rolled-back`` (interrupted, clean rollback),
    #: ``replayed`` (redo, committed and re-applied),
    #: ``discarded`` (redo, uncommitted),
    #: ``salvaged-rolled-back`` / ``salvaged-partial`` (damage skipped),
    #: ``inert-damage`` (resolved transaction with corrupt — but inert —
    #: records).
    dispositions: Dict[int, str] = field(default_factory=dict)
    #: Surviving cross-shard 2PC protocol records (prepare/prepared/
    #: decide-commit/decide-abort), captured before the log is cleared.
    #: Local replay treats them as inert; :mod:`repro.shard.recovery`
    #: resolves in-doubt global transactions from them.
    twopc_entries: List[DurableLogEntry] = field(default_factory=list)

    @property
    def damaged(self) -> bool:
        return bool(self.torn_entries or self.corrupt_entries)


def recover(
    pm: PersistentMemory,
    *,
    mode: LoggingMode = LoggingMode.UNDO,
    hooks: "List[RecoveryHook] | None" = None,
    from_bytes: bool = False,
    policy: str = "strict",
    profiler: "Optional[object]" = None,
) -> RecoveryReport:
    """Run full recovery on the durable state in *pm*.

    *profiler* (a :class:`repro.obs.profiler.CycleProfiler`) receives
    clock-free ``recovery.*`` event counts — post-crash recovery runs
    outside any machine clock, so its work is counted, not timed (the
    in-run abort replay *is* timed, in the machine's ``recovery``
    phase).  Passing one never changes what recovery does.

    Mutates *pm* in place (applying log records, then — only after every
    hook succeeded — clearing the whole log region, serialized stream
    and cursor included) and runs each application hook against a
    :class:`PmView`.

    ``from_bytes=True`` ignores the structural entry list and re-parses
    the serialized log region word by word — what a real controller has
    after a crash.  Both paths must produce the same durable state (the
    equivalence is property-tested), including their damage
    classification: faults injected through
    :class:`~repro.mem.pm.PersistentMemory` mark the structural ledger
    exactly where the byte stream's checksums fail.
    """
    if policy not in POLICIES:
        raise SimulationError(f"unknown recovery policy {policy!r}")
    parsed: ParsedLog = (
        pm.parse_byte_log_tolerant() if from_bytes else pm.structural_parsed()
    )
    report = RecoveryReport(mode=mode, policy=policy, log_version=parsed.version)
    _classify_damage(parsed, report, policy)
    # Protocol records must outlive the log reset below: the cross-shard
    # resolution pass needs them after every local log is spent.
    report.twopc_entries = [
        e for e in parsed.entries if e.kind in TWOPC_KINDS
    ]
    quarantined = {
        d.tx_seq for d in parsed.damaged if d.tx_seq is not None
    }
    if parsed.torn_tail is not None and parsed.torn_tail.tx_seq is not None:
        quarantined.add(parsed.torn_tail.tx_seq)
    if mode is LoggingMode.UNDO:
        _recover_undo(pm, parsed.entries, report, quarantined)
    else:
        _recover_redo(pm, parsed.entries, report, quarantined)
    view = PmView(pm)
    for hook in hooks or []:
        hook.recover(view)
        report.hooks_run += 1
    # Only now that replay *and* every hook succeeded is the log spent;
    # clearing earlier would leave a half-recovered image behind a hook
    # failure, and a re-run would have nothing left to replay.
    pm.log_reset()
    if profiler is not None:
        profiler.count("recovery.passes")
        profiler.count("recovery.log_entries_scanned", len(parsed.entries))
        profiler.count("recovery.words_restored", report.words_restored)
        profiler.count("recovery.hooks_run", report.hooks_run)
        profiler.count(
            "recovery.rolled_back_txs", len(report.rolled_back_tx_seqs)
        )
        profiler.count("recovery.replayed_txs", len(report.replayed_tx_seqs))
        if report.twopc_entries:
            profiler.count("recovery.twopc_entries", len(report.twopc_entries))
        if report.damaged:
            profiler.count("recovery.torn_entries", report.torn_entries)
            profiler.count("recovery.corrupt_entries", report.corrupt_entries)
    return report


def _classify_damage(
    parsed: ParsedLog, report: RecoveryReport, policy: str
) -> None:
    """Count damage; raise the typed strict-mode errors before anything
    has been mutated."""
    if parsed.torn_tail is not None:
        if policy == "strict":
            raise TornLogError(
                f"torn log tail ({parsed.torn_tail})",
                offset=parsed.torn_tail.offset,
            )
        report.torn_entries += 1
    if parsed.damaged:
        if policy == "strict":
            first = parsed.damaged[0]
            raise LogChecksumError(
                f"corrupt log entry ({first})", offset=first.offset
            )
        report.corrupt_entries += len(parsed.damaged)


def _recover_undo(
    pm: PersistentMemory,
    entries: "List",
    report: RecoveryReport,
    quarantined: "set[int]",
) -> None:
    resolved = PersistentMemory.resolved_tx_seqs(entries)
    committed = {e.tx_seq for e in entries if e.kind == "commit"}
    # Walk the whole log backwards so that when duplicate records exist
    # for one word (possible after the L2 granularity round-trip), the
    # earliest record — the true pre-image — is applied last.
    interrupted: List[int] = []
    for entry in reversed(entries):
        if entry.kind != "undo" or entry.tx_seq in resolved:
            continue
        if entry.tx_seq not in interrupted:
            interrupted.append(entry.tx_seq)
        for i, word in enumerate(entry.words):
            pm.write_word(entry.addr + i * units.WORD_BYTES, word)
            report.words_restored += 1
    report.rolled_back_tx_seqs = sorted(interrupted)
    for tx_seq in resolved:
        report.dispositions[tx_seq] = (
            "committed" if tx_seq in committed else "aborted"
        )
    for tx_seq in interrupted:
        report.dispositions[tx_seq] = "rolled-back"
    _note_salvage(report, quarantined, resolved, set(interrupted), "rolled-back")


def _recover_redo(
    pm: PersistentMemory,
    entries: "List",
    report: RecoveryReport,
    quarantined: "set[int]",
) -> None:
    committed = {e.tx_seq for e in entries if e.kind == "commit"}
    replayed: List[int] = []
    # Forward order: a later record for the same word carries the newer
    # value and must win.
    for entry in entries:
        if entry.kind != "redo" or entry.tx_seq not in committed:
            continue
        if entry.tx_seq not in replayed:
            replayed.append(entry.tx_seq)
        for i, word in enumerate(entry.words):
            pm.write_word(entry.addr + i * units.WORD_BYTES, word)
            report.words_restored += 1
    report.replayed_tx_seqs = sorted(replayed)
    for entry in entries:
        if entry.kind != "redo" or entry.tx_seq in committed:
            continue
        report.dispositions.setdefault(entry.tx_seq, "discarded")
    for tx_seq in replayed:
        report.dispositions[tx_seq] = "replayed"
    _note_salvage(report, quarantined, committed, set(replayed), "replayed")


def _note_salvage(
    report: RecoveryReport,
    quarantined: "set[int]",
    resolved: "set[int]",
    applied: "set[int]",
    applied_action: str,
) -> None:
    """Record what happened to transactions whose records were damaged.

    A resolved transaction's damaged records were inert anyway; an
    unresolved one was handled from its *surviving* records only, which
    is the salvage the report must disclose.
    """
    for tx_seq in sorted(quarantined):
        if tx_seq in resolved and tx_seq not in applied:
            report.dispositions[tx_seq] = "inert-damage"
            continue
        if tx_seq in applied:
            report.dispositions[tx_seq] = f"salvaged-{applied_action}"
        else:
            report.dispositions.setdefault(tx_seq, "salvaged-rolled-back")
        report.salvaged_tx_seqs.append(tx_seq)
    report.salvaged_tx_seqs = sorted(set(report.salvaged_tx_seqs))
