"""Post-crash recovery: structural log replay plus application hooks.

Recovery after a power failure happens in two layers, mirroring the
paper's model:

1. **Log replay** (this module, hardware/kernel equivalent): for undo
   logging, every transaction that has log records but no commit marker
   was interrupted, so its undo records are applied in reverse to restore
   pre-transaction values.  For redo logging, transactions *with* a
   commit marker re-apply their records forward (their in-place data may
   not have fully persisted); uncommitted records are discarded.

2. **Application recovery** (Section IV): log-free data is repaired by
   user/compiler-generated code — a garbage collector reclaims objects
   allocated by interrupted transactions (Pattern 1), and lazily
   persistent data is rebuilt from other durable state (Pattern 2).
   Workloads register such code as :class:`RecoveryHook` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Protocol

from repro.common import units
from repro.core.ordering import LoggingMode
from repro.mem.pm import PersistentMemory


class PmView:
    """Word-level durable memory access handed to application recovery.

    Recovery code must only see what survived the crash, so it operates
    on the persistent backing store directly (never on caches, which are
    gone).
    """

    def __init__(self, pm: PersistentMemory) -> None:
        self._pm = pm

    def read(self, addr: int) -> int:
        return self._pm.read_word(addr)

    def write(self, addr: int, value: int) -> None:
        self._pm.write_word(addr, value)


class RecoveryHook(Protocol):
    """Application-level recovery callback (Pattern 1 / Pattern 2 code)."""

    def recover(self, view: PmView) -> None:
        """Repair log-free and rebuild lazily persistent data."""


@dataclass
class RecoveryReport:
    """What structural recovery did."""

    mode: LoggingMode = LoggingMode.UNDO
    rolled_back_tx_seqs: List[int] = field(default_factory=list)
    replayed_tx_seqs: List[int] = field(default_factory=list)
    words_restored: int = 0
    hooks_run: int = 0


def recover(
    pm: PersistentMemory,
    *,
    mode: LoggingMode = LoggingMode.UNDO,
    hooks: "List[RecoveryHook] | None" = None,
    from_bytes: bool = False,
) -> RecoveryReport:
    """Run full recovery on the durable state in *pm*.

    Mutates *pm* in place (applying log records and clearing the log) and
    then runs each application hook against a :class:`PmView`.

    ``from_bytes=True`` ignores the structural entry list and re-parses
    the serialized log region word by word — what a real controller has
    after a crash.  Both paths must produce the same durable state (the
    equivalence is property-tested).
    """
    report = RecoveryReport(mode=mode)
    entries = pm.parse_byte_log() if from_bytes else pm.log
    if mode is LoggingMode.UNDO:
        _recover_undo(pm, entries, report)
    else:
        _recover_redo(pm, entries, report)
    pm.log.clear()
    view = PmView(pm)
    for hook in hooks or []:
        hook.recover(view)
        report.hooks_run += 1
    return report


def _recover_undo(
    pm: PersistentMemory, entries: "List", report: RecoveryReport
) -> None:
    resolved = PersistentMemory.resolved_tx_seqs(entries)
    # Walk the whole log backwards so that when duplicate records exist
    # for one word (possible after the L2 granularity round-trip), the
    # earliest record — the true pre-image — is applied last.
    interrupted: List[int] = []
    for entry in reversed(entries):
        if entry.kind != "undo" or entry.tx_seq in resolved:
            continue
        if entry.tx_seq not in interrupted:
            interrupted.append(entry.tx_seq)
        for i, word in enumerate(entry.words):
            pm.write_word(entry.addr + i * units.WORD_BYTES, word)
            report.words_restored += 1
    report.rolled_back_tx_seqs = sorted(interrupted)


def _recover_redo(
    pm: PersistentMemory, entries: "List", report: RecoveryReport
) -> None:
    committed = {e.tx_seq for e in entries if e.kind == "commit"}
    replayed: List[int] = []
    # Forward order: a later record for the same word carries the newer
    # value and must win.
    for entry in entries:
        if entry.kind != "redo" or entry.tx_seq not in committed:
            continue
        if entry.tx_seq not in replayed:
            replayed.append(entry.tx_seq)
        for i, word in enumerate(entry.words):
            pm.write_word(entry.addr + i * units.WORD_BYTES, word)
            report.words_restored += 1
    report.replayed_tx_seqs = sorted(replayed)
