"""Media fault injection for the durable log region.

Real PM controllers guarantee only 8-byte write atomicity and real media
loses or corrupts bits; this package injects exactly those hazards into
the simulator's durable state so the hardened recovery engine
(:mod:`repro.recovery.engine`) can be exercised against them:

* **torn tail** — the final in-flight log append is cut at an arbitrary
  word boundary (power failure mid-append);
* **bit flip** — one bit of a serialized log entry flips (media
  corruption), caught by the v1 per-entry checksum;
* **drop drains** — the last N WPQ drains never reach media (ADR energy
  budget failure), reverting a suffix of durability groups.

All injection runs through :class:`~repro.mem.pm.PersistentMemory`, so
the structural and serialized views of the log stay consistent.
"""

from repro.faults.model import (
    FAULT_KINDS,
    BitFlip,
    DropDrains,
    FaultModel,
    TornAppend,
)

__all__ = [
    "FAULT_KINDS",
    "BitFlip",
    "DropDrains",
    "FaultModel",
    "TornAppend",
]
