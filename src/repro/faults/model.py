"""Deterministic, seedable media fault model.

A :class:`FaultModel` is attached to a
:class:`~repro.mem.pm.PersistentMemory` (``pm.fault_model = model``) and
fires on the log-append clock: every ``pm.log_append`` call passes the
model the entry about to become durable plus its global append index.
The model's *plan* (one of :class:`TornAppend`, :class:`BitFlip`,
:class:`DropDrains`) decides what actually reaches the media.

Torn appends and bit flips crash the machine at the very append they
damage — that is the physically honest moment: once later durability
events have happened, the words are on media and can no longer be
partially lost.  Drop-drain faults instead revert already-applied
durability groups after the crash, modelling the ADR promise being
broken by a failed energy reserve.

Everything is deterministic: plans are explicit coordinates, and the
seeded RNG (:meth:`FaultModel.rng`) is only used by campaign drivers to
*choose* coordinates, never inside the injection itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.common.errors import PowerFailure, SimulationError
from repro.mem.pm import DurableLogEntry, PersistentMemory

#: Fault-kind tags addressable from CLI flags and reproducer files.
FAULT_KINDS = ("torn-tail", "bit-flip", "drop-drains")


@dataclass(frozen=True)
class TornAppend:
    """Cut the *append_index*-th log append after *cut_words* words.

    ``cut_words == 0`` means the append never touched media (the stream
    simply ends earlier); a cut equal to the entry's full wire length is
    the no-damage control case (append completed, then the power died).
    """

    append_index: int
    cut_words: int


@dataclass(frozen=True)
class BitFlip:
    """Flip bit *bit* of wire word *word* of the *append_index*-th
    append, then crash.  The damaged entry always belongs to the
    in-flight transaction — exactly the uncommitted-entry corruption the
    per-entry checksum must catch."""

    append_index: int
    word: int
    bit: int


@dataclass(frozen=True)
class DropDrains:
    """After the crash, revert the last *count* durability groups (WPQ
    drains that never reached media).  Applied via
    :meth:`FaultModel.apply_post_crash`, not on the append clock."""

    count: int


Plan = Union[TornAppend, BitFlip, DropDrains]


class FaultModel:
    """One planned media fault, deterministic and replayable."""

    def __init__(self, plan: Optional[Plan] = None, *, seed: int = 0) -> None:
        self.plan = plan
        self.seed = seed
        self.rng = random.Random(f"faults:{seed}")
        #: Set once the plan actually fired (coverage accounting).
        self.fired = False

    # --- append-clock injection (called by PersistentMemory) -----------

    def on_append(
        self, pm: PersistentMemory, entry: DurableLogEntry, index: int
    ) -> bool:
        """Intercept one log append.  Returns True when the model
        handled the append itself (the normal path must not run).  May
        raise :class:`PowerFailure` — the fault's crash."""
        plan = self.plan
        if isinstance(plan, TornAppend) and index == plan.append_index:
            self.fired = True
            pm.serialize_partial(entry, plan.cut_words)
            raise PowerFailure(
                f"torn log append #{index} (cut at word {plan.cut_words})"
            )
        if isinstance(plan, BitFlip) and index == plan.append_index:
            pm.append_clean(entry)
            self.fired = True
            pm.flip_serialized_bit(
                len(pm.log_extents) - 1, plan.word, plan.bit
            )
            raise PowerFailure(
                f"bit flip in log append #{index} "
                f"(word {plan.word}, bit {plan.bit})"
            )
        return False

    # --- post-crash injection ------------------------------------------

    def apply_post_crash(self, pm: PersistentMemory) -> int:
        """Apply the post-crash part of the plan (drop-drain reverts).
        Returns the number of durability groups reverted."""
        if isinstance(self.plan, DropDrains):
            dropped = pm.drop_last_drains(self.plan.count)
            self.fired = self.fired or dropped > 0
            return dropped
        return 0

    # --- deterministic coordinate helpers (campaign drivers) ------------

    def choose_flip(
        self, wire_lengths: List[int], *, case: int
    ) -> Optional[BitFlip]:
        """Pick a (append, word, bit) coordinate from the dry-run wire
        layout, deterministically per ``(seed, case)``."""
        if not wire_lengths:
            return None
        rng = random.Random(f"faults:{self.seed}:flip:{case}")
        append_index = rng.randrange(len(wire_lengths))
        word = rng.randrange(wire_lengths[append_index])
        bit = rng.randrange(64)
        return BitFlip(append_index=append_index, word=word, bit=bit)


def tear_points(wire_lengths: List[int]) -> List[Tuple[int, int]]:
    """Every (append_index, cut_words) coordinate of an exhaustive
    torn-tail sweep over a run whose appends have the given wire word
    counts — every word-boundary cut of every entry, including the
    zero-cut (append lost entirely) and full-cut (control) cases."""
    points: List[Tuple[int, int]] = []
    for index, nwords in enumerate(wire_lengths):
        if nwords <= 0:
            raise SimulationError(f"append #{index} has no wire words")
        points.extend((index, cut) for cut in range(nwords + 1))
    return points
