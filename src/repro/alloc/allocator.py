"""Persistent-heap allocator for the simulated PM region.

A first-fit free-list allocator with a bump-pointer tail, handing out
word-aligned ranges from the persistent heap
(:data:`repro.mem.layout.PM_HEAP_BASE` upward).

Allocator *bookkeeping* is volatile, which matches the paper's
programming model: an allocation made inside a crash-interrupted
transaction is simply leaked, and recovery reclaims leaks with a garbage
collector / persistent inspector (Pattern 1, Section IV-A).
:meth:`PersistentAllocator.rebuild_from_reachable` implements that GC
step — it reconstructs allocator state from the set of object ranges a
workload's recovery code found reachable from its durable roots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.common import units
from repro.common.errors import AllocationError
from repro.mem import layout


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


@dataclass(frozen=True)
class Allocation:
    """One live allocation: base address and size in bytes."""

    addr: int
    size: int

    @property
    def end(self) -> int:
        return self.addr + self.size


class PersistentAllocator:
    """First-fit free list + bump pointer over the persistent heap."""

    def __init__(
        self,
        base: int = layout.PM_HEAP_BASE,
        capacity: int = 256 * units.MIB,
        *,
        default_align: int = units.WORD_BYTES,
    ) -> None:
        if base % units.WORD_BYTES != 0:
            raise AllocationError("heap base must be word-aligned")
        self.base = base
        self.capacity = capacity
        self.default_align = default_align
        self._bump = base
        self._free: List[Tuple[int, int]] = []  # (addr, size), sorted by addr
        self._live: Dict[int, Allocation] = {}
        self.total_allocated = 0
        self.total_freed = 0

    # --- allocation ---------------------------------------------------------

    def alloc(self, size: int, *, align: "int | None" = None) -> int:
        """Allocate *size* bytes; returns the base address."""
        if size <= 0:
            raise AllocationError(f"invalid allocation size {size}")
        align = align or self.default_align
        if align % units.WORD_BYTES != 0:
            raise AllocationError("alignment must be a multiple of the word size")
        size = _align_up(size, units.WORD_BYTES)

        addr = self._take_from_free_list(size, align)
        if addr is None:
            addr = _align_up(self._bump, align)
            if addr + size > self.base + self.capacity:
                raise AllocationError(
                    f"persistent heap exhausted (capacity {self.capacity} bytes)"
                )
            self._bump = addr + size
        self._live[addr] = Allocation(addr, size)
        self.total_allocated += 1
        return addr

    def _take_from_free_list(self, size: int, align: int) -> "int | None":
        for i, (addr, block_size) in enumerate(self._free):
            aligned = _align_up(addr, align)
            waste = aligned - addr
            if block_size - waste >= size:
                del self._free[i]
                if waste:
                    self._free_insert(addr, waste)
                tail = block_size - waste - size
                if tail:
                    self._free_insert(aligned + size, tail)
                return aligned
        return None

    def free(self, addr: int) -> None:
        """Release a live allocation."""
        allocation = self._live.pop(addr, None)
        if allocation is None:
            raise AllocationError(f"free of unallocated address {addr:#x}")
        self._free_insert(allocation.addr, allocation.size)
        self.total_freed += 1

    def _free_insert(self, addr: int, size: int) -> None:
        """Insert a block, merging with adjacent free neighbours."""
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < addr:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (addr, size))
        self._coalesce_around(lo)

    def _coalesce_around(self, index: int) -> None:
        # Merge with successor first, then predecessor.
        if index + 1 < len(self._free):
            addr, size = self._free[index]
            naddr, nsize = self._free[index + 1]
            if addr + size == naddr:
                self._free[index] = (addr, size + nsize)
                del self._free[index + 1]
        if index > 0:
            paddr, psize = self._free[index - 1]
            addr, size = self._free[index]
            if paddr + psize == addr:
                self._free[index - 1] = (paddr, psize + size)
                del self._free[index]

    # --- queries ------------------------------------------------------------

    def is_live(self, addr: int) -> bool:
        return addr in self._live

    def live_allocations(self) -> List[Allocation]:
        return sorted(self._live.values(), key=lambda a: a.addr)

    def live_bytes(self) -> int:
        return sum(a.size for a in self._live.values())

    def free_bytes(self) -> int:
        return sum(size for _, size in self._free)

    # --- post-crash GC (Pattern 1 recovery) ------------------------------------

    def rebuild_from_reachable(self, reachable: "Iterable[Tuple[int, int]]") -> int:
        """Reset allocator state to exactly the reachable object set.

        *reachable* yields ``(addr, size)`` ranges found by the workload's
        recovery scan.  Everything else below the bump pointer becomes
        free space.  Returns the number of leaked allocations reclaimed.
        """
        old_live = set(self._live)
        self._live = {addr: Allocation(addr, _align_up(size, units.WORD_BYTES))
                      for addr, size in reachable}
        leaked = len(old_live - set(self._live))
        self._rebuild_free_list()
        return leaked

    def _rebuild_free_list(self) -> None:
        self._free = []
        cursor = self.base
        for allocation in sorted(self._live.values(), key=lambda a: a.addr):
            if allocation.addr > cursor:
                self._free_insert(cursor, allocation.addr - cursor)
            cursor = max(cursor, allocation.end)
        self._bump = cursor
