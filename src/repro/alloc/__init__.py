"""Persistent-heap allocation and object layout."""

from repro.alloc.allocator import Allocation, PersistentAllocator
from repro.alloc.objects import NULL, StructLayout, layout

__all__ = [
    "PersistentAllocator",
    "Allocation",
    "StructLayout",
    "layout",
    "NULL",
]
