"""Typed field layout for persistent objects.

Workload data structures are built from fixed-layout records of 8-byte
fields.  A :class:`StructLayout` names the fields once; a field address
is then ``base + offset(name)``.  Keeping layout explicit (instead of
pickling Python objects) is what lets every field access become a real
simulated load/store with correct cache-line behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.common import units
from repro.common.errors import ReproError

#: Conventional null pointer in the simulated heap.
NULL = 0


@dataclass(frozen=True)
class StructLayout:
    """A named sequence of 8-byte fields."""

    name: str
    fields: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.fields)) != len(self.fields):
            raise ReproError(f"duplicate field names in struct {self.name}")
        # Per-field byte offsets, precomputed: field lookups happen on
        # every simulated struct access (not a dataclass field — equality
        # and hashing stay derived from name/fields).
        object.__setattr__(
            self,
            "_offsets",
            {f: i * units.WORD_BYTES for i, f in enumerate(self.fields)},
        )

    @property
    def size(self) -> int:
        """Struct size in bytes."""
        return len(self.fields) * units.WORD_BYTES

    def offset(self, field: str) -> int:
        """Byte offset of *field* from the struct base."""
        try:
            return self._offsets[field]
        except KeyError:
            raise ReproError(
                f"struct {self.name} has no field {field!r}; has {self.fields}"
            ) from None

    def addr(self, base: int, field: str) -> int:
        """Absolute address of *field* in an instance at *base*."""
        try:
            return base + self._offsets[field]
        except KeyError:
            raise ReproError(
                f"struct {self.name} has no field {field!r}; has {self.fields}"
            ) from None

    def field_addrs(self, base: int) -> Dict[str, int]:
        """All field addresses of an instance at *base*."""
        return {f: self.addr(base, f) for f in self.fields}


def layout(name: str, fields: Sequence[str]) -> StructLayout:
    """Convenience constructor: ``layout("node", ["key", "next"])``."""
    return StructLayout(name=name, fields=tuple(fields))
