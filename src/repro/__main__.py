"""Command-line front end: figures and the fuzz campaign.

Usage::

    python -m repro list                 # available figures
    python -m repro fig08                # regenerate Figure 8 (1,000 ops)
    python -m repro fig12 --ops 300      # quicker, smaller run
    python -m repro all --ops 200        # everything
    python -m repro fuzz --budget 200 --seed 7   # crash-consistency fuzz
    python -m repro fuzz --replay r.json         # replay a reproducer
    python -m repro serve --scheme SLPMT --batch-size 8  # txn service bench
    python -m repro obs stats --scheme SLPMT     # cycle attribution dump
    python -m repro obs trace --out trace.json   # Perfetto trace export
    python -m repro bench --check                # perf-regression gate
    python -m repro model fit                    # fit the cost model
    python -m repro bench --model                # predict + spot-check
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.figures import FIGURES, regenerate


def main(argv: "list[str] | None" = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        from repro.fuzz.cli import fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] == "obs":
        from repro.obs.cli import obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.obs.cli import bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.service.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "model":
        from repro.model.cli import model_main

        return model_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the SLPMT paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        help="figure name (fig08..fig14), 'all', or 'list'",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=1000,
        help="ycsb-load inserts per run (paper: 1000)",
    )
    args = parser.parse_args(argv)

    if args.figure == "list":
        for name in sorted(FIGURES):
            print(name)
        return 0

    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        if name not in FIGURES:
            parser.error(f"unknown figure {name!r}; try 'list'")
        start = time.perf_counter()
        result = regenerate(name, num_ops=args.ops)
        elapsed = time.perf_counter() - start
        print(result.text)
        print(f"[{result.name} regenerated in {elapsed:.1f}s "
              f"at {args.ops} ops/run]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
