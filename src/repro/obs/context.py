"""Request-scoped trace context: who a span belongs to, end to end.

A :class:`TraceContext` names one client request as it moves through
the serving stack — work coordinator admission, group-commit batches in
the transaction manager, resource-manager reads, the shard router and
the 2PC coordinator.  Every layer that emits a request-scoped trace
event attaches the context's fields, so the Perfetto export can stitch
parent-linked spans across tracks: the request span on its home shard,
the batch span that committed it, and (for a cross-shard transaction)
the global-transaction span on the coordinator track with PREPARE /
DECIDE flow arrows to each participant.

Contexts are immutable; a layer that learns more (the router assigns a
shard, the TM assigns a batch, the coordinator assigns a gtx) derives a
child with :meth:`child` rather than mutating shared state.  Like every
obs object, a context is pure bookkeeping — it never touches a machine
and costs zero simulated cycles.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

#: Event kinds the request tracer emits (the request-span schema the
#: Perfetto exporter consumes; see :func:`repro.obs.trace.request_trace_events`).
REQUEST_EVENT_KINDS = (
    "req_begin",      # request entered the system (span open)
    "req_admit",      # admitted into the bounded queue
    "req_shed",       # rejected by admission control (span close)
    "req_ack",        # response recorded (span close)
    "batch_begin",    # group-commit batch entered the TM (span open)
    "batch_end",      # batch commit marker durable (span close)
    "gtx_begin",      # 2PC global transaction opened (span open)
    "gtx_end",        # durable decision reached + applied (span close)
    "prepare_send",   # coordinator asked a participant to prepare (flow out)
    "prepare_done",   # participant's prepare records durable (flow in)
    "decide_send",    # coordinator's durable decision fanned out (flow out)
    "decide_done",    # participant applied + sealed the decision (flow in)
    "rm_read",        # resource manager served the read (instant)
)

#: Async-id namespaces: request flow ids are small (client/seq based);
#: batch spans, gtx spans and the per-(gtx, shard) PREPARE/DECIDE flow
#: arrows each live in their own integer range so no two Perfetto ids
#: can collide across span families.
BATCH_FLOW_BASE = 2_000_000_000
GTX_FLOW_BASE = 3_000_000_000
PREPARE_FLOW_BASE = 4_000_000_000
DECIDE_FLOW_BASE = 5_000_000_000

#: Shards per gtx the arrow namespaces reserve (the deployment caps
#: participants at 8; 16 leaves headroom).
_FLOW_SHARD_STRIDE = 16


def batch_flow_id(batch: int) -> int:
    """Async id of a group-commit batch span."""
    return BATCH_FLOW_BASE + batch


def gtx_flow_id(gtx: int) -> int:
    """Async id of a 2PC global-transaction span."""
    return GTX_FLOW_BASE + gtx


def prepare_flow_id(gtx: int, shard: int) -> int:
    """Flow-arrow id of one PREPARE (coordinator -> shard)."""
    return PREPARE_FLOW_BASE + gtx * _FLOW_SHARD_STRIDE + shard


def decide_flow_id(gtx: int, shard: int) -> int:
    """Flow-arrow id of one DECIDE (coordinator -> shard)."""
    return DECIDE_FLOW_BASE + gtx * _FLOW_SHARD_STRIDE + shard


@dataclass(frozen=True)
class TraceContext:
    """Identity of one request (and the work done on its behalf)."""

    client: int
    seq: int
    #: Home shard (router-assigned); ``None`` on a single-machine service.
    shard: Optional[int] = None
    #: Group-commit batch that carried the request's write, if any.
    batch: Optional[int] = None
    #: Global (cross-shard) transaction sequence, if 2PC was involved.
    gtx: Optional[int] = None

    @property
    def request_id(self) -> str:
        """Stable human-readable id: ``c<client>.r<seq>``."""
        return f"c{self.client}.r{self.seq}"

    @property
    def flow_id(self) -> int:
        """Deterministic integer id for Perfetto async/flow binding.

        Unique per request within a run: clients and sequence numbers
        are both bounded well below the multipliers.
        """
        return 1 + self.client * 1_000_003 + self.seq * 7

    def child(self, **fields: Any) -> "TraceContext":
        """A derived context with extra identity learned downstream."""
        return dataclasses.replace(self, **fields)

    def fields(self) -> Dict[str, Any]:
        """The non-``None`` identity fields, for trace-event args."""
        out: Dict[str, Any] = {
            "request": self.request_id,
            "client": self.client,
            "seq": self.seq,
        }
        if self.shard is not None:
            out["shard"] = self.shard
        if self.batch is not None:
            out["batch"] = self.batch
        if self.gtx is not None:
            out["gtx"] = self.gtx
        return out


def for_request(request, *, shard: Optional[int] = None) -> TraceContext:
    """Root context for a :class:`~repro.service.model.Request`."""
    return TraceContext(client=request.client, seq=request.seq, shard=shard)
