"""Cycle attribution: every simulated cycle lands in one named phase.

The machine wires lightweight scoped spans around its interesting
regions (logging, draining, committing, forcing lazy lines, aborting);
between spans the clock belongs to the residual ``execute`` phase.  The
profiler keeps a phase stack and, at every span boundary, attributes
``now - last_mark`` to whichever phase was on top — so the buckets
partition the run exactly: ``sum(phase_cycles.values()) == cycles``
from :meth:`bind` to :meth:`finalize` (the property the tests pin).

Two kinds of cost do not arrive as a wall-clock region:

* **reattributed** cycles (WPQ stalls, backoff waits) are *inside* an
  enclosing region but deserve their own bucket;
  :meth:`reattribute` moves them from the enclosing phase without
  changing the total;
* **event counts** (recovery replay work, which runs with no machine
  clock) are recorded via :meth:`count`.

Attachment is passive by construction: the profiler only ever *reads*
the machine clock, so simulated cycles and PM bytes are bit-identical
with or without one (the CI passivity gate re-proves this on every
push).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.histogram import LogHistogram

#: The phase taxonomy (DESIGN.md §7).  ``execute`` is the residual:
#: instruction issue, cache traversal, and anything not inside a span.
PHASES = (
    "execute",
    "log-append",
    "log-drain",
    "commit-persist",
    "wpq-stall",
    "backoff",
    "forced-lazy",
    "abort",
    "recovery",
    # Cross-shard 2PC (DESIGN.md §11): a participant persisting its
    # prepare records, any node persisting a decision record, and the
    # post-crash in-doubt resolution pass (clock-free: counted events
    # only, since resolution runs outside the machine clock).
    "prepare-persist",
    "decide-persist",
    "resolve",
)

#: Distributions every profiler carries (DESIGN.md §7).
HISTOGRAMS = (
    "tx_latency",
    "commit_cycles",
    "log_record_bytes",
    "wpq_occupancy",
)


class CycleProfiler:
    """Scoped-span cycle attribution plus streaming histograms."""

    def __init__(self) -> None:
        self.phase_cycles: Dict[str, int] = {p: 0 for p in PHASES}
        self.span_counts: Dict[str, int] = {}
        self.events: Dict[str, int] = {}
        self.histograms: Dict[str, LogHistogram] = {
            name: LogHistogram() for name in HISTOGRAMS
        }
        self._stack: List[str] = []
        self._mark = 0
        self._bound = False
        #: Clock at the start of the running transaction (latency hist).
        self._tx_start: Optional[int] = None

    # --- span machinery -----------------------------------------------

    def bind(self, now: int) -> None:
        """Start attributing at clock value *now*."""
        self._mark = now
        self._bound = True

    def _flush(self, now: int) -> None:
        delta = now - self._mark
        if delta:
            top = self._stack[-1] if self._stack else "execute"
            self.phase_cycles[top] = self.phase_cycles.get(top, 0) + delta
            self._mark = now

    def begin(self, phase: str, now: int) -> None:
        """Enter a scoped span: cycles now accrue to *phase*."""
        if phase not in self.phase_cycles:
            raise ValueError(f"unknown phase {phase!r} (see PHASES)")
        if not self._bound:
            self.bind(now)
        self._flush(now)
        self._stack.append(phase)
        self.span_counts[phase] = self.span_counts.get(phase, 0) + 1

    def end(self, now: int) -> None:
        """Leave the innermost span."""
        if not self._stack:
            raise RuntimeError("span end() without a matching begin()")
        self._flush(now)
        self._stack.pop()

    def reattribute(self, phase: str, cycles: int, now: int) -> None:
        """Move *cycles* of the enclosing phase into *phase*.

        Used for costs that happen inside another span but deserve
        their own bucket (WPQ stalls, backoff waits).  The clock must
        already have advanced past them, so the total is unchanged.
        """
        if phase not in self.phase_cycles:
            raise ValueError(f"unknown phase {phase!r} (see PHASES)")
        if cycles <= 0:
            return
        if not self._bound:
            self.bind(now)
        self._flush(now)
        top = self._stack[-1] if self._stack else "execute"
        self.phase_cycles[top] = self.phase_cycles.get(top, 0) - cycles
        self.phase_cycles[phase] = self.phase_cycles.get(phase, 0) + cycles

    def unwind(self, now: int) -> None:
        """Flush and drop every open span (crash landed mid-region)."""
        self._flush(now)
        self._stack.clear()
        self._tx_start = None

    def finalize(self, now: int) -> None:
        """Account the tail of the run (e.g. the final WPQ drain)."""
        self.unwind(now)

    # --- events and distributions -------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named event counter (clock-free observability)."""
        self.events[name] = self.events.get(name, 0) + n

    def record(self, histogram: str, value: int) -> None:
        """Add one sample to a named distribution."""
        hist = self.histograms.get(histogram)
        if hist is None:
            hist = LogHistogram()
            self.histograms[histogram] = hist
        hist.record(value)

    def note_tx_begin(self, now: int) -> None:
        self._tx_start = now

    def note_tx_end(self, now: int) -> None:
        """Transaction left the machine (commit or abort)."""
        if self._tx_start is not None:
            self.record("tx_latency", now - self._tx_start)
            self._tx_start = None

    # --- queries -------------------------------------------------------

    def total_cycles(self) -> int:
        """Cycles attributed so far; equals the clock span covered."""
        return sum(self.phase_cycles.values())

    def nonzero_phases(self) -> Dict[str, int]:
        return {p: c for p, c in self.phase_cycles.items() if c}

    # --- merge / serialisation ----------------------------------------

    def merge(self, other: "CycleProfiler") -> None:
        """Fold a peer core's attribution into this profiler."""
        for phase, cycles in other.phase_cycles.items():
            self.phase_cycles[phase] = self.phase_cycles.get(phase, 0) + cycles
        for phase, n in other.span_counts.items():
            self.span_counts[phase] = self.span_counts.get(phase, 0) + n
        for name, n in other.events.items():
            self.events[name] = self.events.get(name, 0) + n
        for name, hist in other.histograms.items():
            if name in self.histograms:
                self.histograms[name].merge(hist)
            else:
                merged = LogHistogram(sub_buckets=hist.sub_buckets)
                merged.merge(hist)
                self.histograms[name] = merged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phase_cycles": dict(self.phase_cycles),
            "span_counts": dict(sorted(self.span_counts.items())),
            "events": dict(sorted(self.events.items())),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CycleProfiler":
        prof = cls()
        prof.phase_cycles.update(
            {str(k): int(v) for k, v in data.get("phase_cycles", {}).items()}
        )
        prof.span_counts = {
            str(k): int(v) for k, v in data.get("span_counts", {}).items()
        }
        prof.events = {str(k): int(v) for k, v in data.get("events", {}).items()}
        for name, hist in data.get("histograms", {}).items():
            prof.histograms[str(name)] = LogHistogram.from_dict(hist)
        return prof

    def format(self) -> str:
        """Human-readable attribution + distribution summary."""
        total = self.total_cycles()
        lines = ["--- cycle attribution ---"]
        for phase in PHASES:
            cycles = self.phase_cycles.get(phase, 0)
            if not cycles:
                continue
            share = 100.0 * cycles / total if total else 0.0
            lines.append(f"  {phase:<16} {cycles:>14,}  {share:5.1f}%")
        extra = [p for p in self.phase_cycles if p not in PHASES]
        for phase in sorted(extra):
            cycles = self.phase_cycles[phase]
            share = 100.0 * cycles / total if total else 0.0
            lines.append(f"  {phase:<16} {cycles:>14,}  {share:5.1f}%")
        lines.append(f"  {'total':<16} {total:>14,}")
        lines.append("--- distributions (p50/p95/p99) ---")
        for name, hist in sorted(self.histograms.items()):
            if hist.count == 0:
                continue
            s = hist.summary()
            lines.append(
                f"  {name:<16} n={s['count']:<8} mean={s['mean']:<12} "
                f"p50={s['p50']} p95={s['p95']} p99={s['p99']} max={s['max']}"
            )
        if self.events:
            lines.append("--- events ---")
            for name, n in sorted(self.events.items()):
                lines.append(f"  {name:<32} {n:>10,}")
        return "\n".join(lines)
