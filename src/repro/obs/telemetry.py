"""Windowed telemetry: fixed-width simulated-cycle time series.

The per-run obs layer answers "how much, in total"; this module answers
"how much, *when*".  A :class:`TelemetryWindows` registry slices the
simulated clock into fixed-width windows (``window_cycles`` wide,
window *i* covering ``[i*W, (i+1)*W)``) and keeps, per window:

* **counts** — acked requests, reads, committed writes, shed requests,
  aborts, group-commit batches, 2PC decisions … any named counter;
* **distributions** — request latency, queue depth, 2PC decide
  latency … any named :class:`~repro.obs.histogram.LogHistogram`.

Attribution rule: every sample lands in exactly **one** window — the
window of the cycle it is recorded at.  Latencies are recorded at
*completion*, so a request that spans two windows counts once, in the
window its response was recorded (the property the tests pin).

Registries merge by aligned window (same ``window_cycles`` required),
and :meth:`to_dict` sorts every key — so folding per-worker registries
in task-submission order yields a byte-identical document to a serial
run, the same contract the parallel bench sweeps already honour.

Passivity: a registry only ever receives cycle values the caller read
from a machine clock; it never advances one.  The CI telemetry gate
(``python -m repro obs passivity --telemetry``) re-proves on every push
that attaching telemetry leaves all simulated counters bit-identical.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.histogram import LogHistogram, merge_all

#: Default window width.  At the service's default load (~3k-cycle mean
#: interarrival over 4 clients) this yields a few dozen requests per
#: window — enough signal for a windowed mean, fine enough to see
#: warm-up.
DEFAULT_WINDOW_CYCLES = 4096

#: Count names every serving layer records (free-form names are also
#: accepted; these are the documented core set).
COUNTS = (
    "acked",
    "reads",
    "writes",
    "shed",
    "aborted",
    "batches",
    "decisions",
)

#: Distribution names the serving layers record.
DISTRIBUTIONS = (
    "latency",
    "queue_depth",
    "decide_latency",
)


class _Window:
    """One window's counters and distributions."""

    __slots__ = ("counts", "hists")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.hists: Dict[str, LogHistogram] = {}


class TelemetryWindows:
    """The windowed metrics registry (see module docstring)."""

    def __init__(self, window_cycles: int = DEFAULT_WINDOW_CYCLES) -> None:
        if window_cycles < 1:
            raise ValueError("window_cycles must be positive")
        self.window_cycles = window_cycles
        self._windows: Dict[int, _Window] = {}

    # --- recording ------------------------------------------------------

    def window_index(self, cycle: int) -> int:
        """The window a cycle value falls in (clamped at zero)."""
        return max(0, cycle) // self.window_cycles

    def _window(self, cycle: int) -> _Window:
        idx = self.window_index(cycle)
        win = self._windows.get(idx)
        if win is None:
            win = _Window()
            self._windows[idx] = win
        return win

    def count(self, cycle: int, name: str, n: int = 1) -> None:
        """Bump counter *name* in the window containing *cycle*."""
        win = self._window(cycle)
        win.counts[name] = win.counts.get(name, 0) + n

    def record(self, cycle: int, name: str, value: int) -> None:
        """Add one sample to distribution *name* in *cycle*'s window."""
        win = self._window(cycle)
        hist = win.hists.get(name)
        if hist is None:
            hist = LogHistogram()
            win.hists[name] = hist
        hist.record(value)

    # --- queries --------------------------------------------------------

    @property
    def num_windows(self) -> int:
        """Occupied-range width: ``max index + 1`` (0 when empty)."""
        return (max(self._windows) + 1) if self._windows else 0

    def series(self, name: str) -> List[int]:
        """Counter *name* per window over ``0..num_windows-1``, zeros
        filled — the contiguous series steady-state detection runs on."""
        out = [0] * self.num_windows
        for idx, win in self._windows.items():
            out[idx] = win.counts.get(name, 0)
        return out

    def total(self, name: str) -> int:
        return sum(w.counts.get(name, 0) for w in self._windows.values())

    def window_counts(self, idx: int) -> Dict[str, int]:
        win = self._windows.get(idx)
        return dict(win.counts) if win is not None else {}

    def window_hist(self, idx: int, name: str) -> Optional[LogHistogram]:
        win = self._windows.get(idx)
        return win.hists.get(name) if win is not None else None

    def merged_hist(
        self, name: str, windows: "Optional[Iterable[int]]" = None
    ) -> LogHistogram:
        """One histogram folding *name* across *windows* (default all)."""
        indices = sorted(self._windows) if windows is None else sorted(windows)
        return merge_all(
            self._windows[i].hists[name]
            for i in indices
            if i in self._windows and name in self._windows[i].hists
        )

    def throughput_per_kcycle(
        self, name: str = "acked", windows: "Optional[Iterable[int]]" = None
    ) -> float:
        """Mean *name* rate over *windows* in events per 1000 cycles."""
        indices = (
            list(range(self.num_windows)) if windows is None
            else sorted(windows)
        )
        if not indices:
            return 0.0
        total = sum(self.window_counts(i).get(name, 0) for i in indices)
        return 1000.0 * total / (len(indices) * self.window_cycles)

    # --- merge / serialisation ------------------------------------------

    def merge(self, other: "TelemetryWindows") -> None:
        """Fold *other*'s windows into this registry (aligned widths)."""
        if other.window_cycles != self.window_cycles:
            raise ValueError(
                f"cannot merge telemetry with window_cycles "
                f"{other.window_cycles} into {self.window_cycles}"
            )
        for idx, src in other._windows.items():
            dst = self._windows.get(idx)
            if dst is None:
                dst = _Window()
                self._windows[idx] = dst
            for name, n in src.counts.items():
                dst.counts[name] = dst.counts.get(name, 0) + n
            for name, hist in src.hists.items():
                if name in dst.hists:
                    dst.hists[name].merge(hist)
                else:
                    fresh = LogHistogram(sub_buckets=hist.sub_buckets)
                    fresh.merge(hist)
                    dst.hists[name] = fresh

    def rebinned(self, factor: int) -> "TelemetryWindows":
        """A fresh registry with *factor* adjacent windows folded into
        one (window ``i`` lands in ``i // factor``).

        Lets a run record at a fine default width and pick the analysis
        width afterwards — e.g. coarsen until a load sweep has ~10
        windows per cell — without re-running anything.  Deterministic:
        counts add, histograms merge.
        """
        if factor < 1:
            raise ValueError("rebin factor must be positive")
        out = TelemetryWindows(window_cycles=self.window_cycles * factor)
        for idx, win in self._windows.items():
            dst = out._windows.get(idx // factor)
            if dst is None:
                dst = _Window()
                out._windows[idx // factor] = dst
            for name, n in win.counts.items():
                dst.counts[name] = dst.counts.get(name, 0) + n
            for name, hist in win.hists.items():
                if name in dst.hists:
                    dst.hists[name].merge(hist)
                else:
                    fresh = LogHistogram(sub_buckets=hist.sub_buckets)
                    fresh.merge(hist)
                    dst.hists[name] = fresh
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic (fully sorted) serialised form."""
        return {
            "window_cycles": self.window_cycles,
            "windows": {
                str(idx): {
                    "counts": dict(sorted(win.counts.items())),
                    "hists": {
                        name: hist.to_dict()
                        for name, hist in sorted(win.hists.items())
                    },
                }
                for idx, win in sorted(self._windows.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TelemetryWindows":
        tel = cls(window_cycles=int(data["window_cycles"]))
        for idx, payload in data.get("windows", {}).items():
            win = _Window()
            win.counts = {
                str(k): int(v) for k, v in payload.get("counts", {}).items()
            }
            win.hists = {
                str(k): LogHistogram.from_dict(v)
                for k, v in payload.get("hists", {}).items()
            }
            tel._windows[int(idx)] = win
        return tel

    # --- reporting ------------------------------------------------------

    def rows(self) -> List[Dict[str, Any]]:
        """Per-window summary rows over the full occupied range."""
        out: List[Dict[str, Any]] = []
        for idx in range(self.num_windows):
            counts = self.window_counts(idx)
            row: Dict[str, Any] = {
                "window": idx,
                "start_cycle": idx * self.window_cycles,
                "end_cycle": (idx + 1) * self.window_cycles,
                "counts": dict(sorted(counts.items())),
            }
            win = self._windows.get(idx)
            if win is not None:
                row["hists"] = {
                    name: hist.summary()
                    for name, hist in sorted(win.hists.items())
                }
            else:
                row["hists"] = {}
            out.append(row)
        return out

    def format(self, *, counter: str = "acked") -> str:
        """Human-readable window table (throughput + latency quantiles)."""
        lines = [
            f"--- windows ({self.window_cycles} cycles each) ---",
            f"  {'win':>4} {'cycles':>18} {counter:>7} {'/kcyc':>7} "
            f"{'lat p50':>9} {'p95':>9} {'p99':>9} {'qdepth':>7} {'shed':>5}",
        ]
        for idx in range(self.num_windows):
            counts = self.window_counts(idx)
            n = counts.get(counter, 0)
            rate = 1000.0 * n / self.window_cycles
            lat = self.window_hist(idx, "latency")
            depth = self.window_hist(idx, "queue_depth")
            lines.append(
                f"  {idx:>4} "
                f"{idx * self.window_cycles:>8}..{(idx + 1) * self.window_cycles:<8} "
                f"{n:>7} {rate:>7.2f} "
                f"{lat.p50 if lat else 0:>9} {lat.p95 if lat else 0:>9} "
                f"{lat.p99 if lat else 0:>9} "
                f"{depth.p95 if depth else 0:>7} {counts.get('shed', 0):>5}"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._windows)


def merge_telemetry(
    registries: "Iterable[TelemetryWindows]",
) -> TelemetryWindows:
    """Merge any number of aligned registries into a fresh one."""
    out: "Optional[TelemetryWindows]" = None
    for tel in registries:
        if out is None:
            out = TelemetryWindows(window_cycles=tel.window_cycles)
        out.merge(tel)
    return out if out is not None else TelemetryWindows()
