"""The ``python -m repro obs`` and ``python -m repro bench`` front ends.

Observability subcommands::

    python -m repro obs stats --workload hashtable --scheme SLPMT
    python -m repro obs stats ... --json run.json     # diffable snapshot
    python -m repro obs hist  --workload rbtree --scheme FG+LG
    python -m repro obs trace --cores 4 --ops 50 --out trace.json
    python -m repro obs trace ... --jsonl events.jsonl
    python -m repro obs diff a.json b.json            # two-run diff
    python -m repro obs passivity                     # CI gate, exit 1 on drift

Bench artifacts and the perf-regression gate::

    python -m repro bench                    # run + print the sweep
    python -m repro bench --update           # re-pin BENCH_slpmt_ycsb.json
    python -m repro bench --check            # fail on drift vs the baseline
    python -m repro bench --multicore        # shared-key contention grid
    python -m repro bench --multicore --cores 1,2,4 --check
    python -m repro bench --twopc            # cross-shard 2PC grid
    python -m repro bench --twopc --check    # gate vs BENCH_twopc.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List

from repro.obs import bench as bench_mod
from repro.obs.run import observed_multicore_ycsb, observed_run
from repro.obs.trace import (
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.parallel.engine import WorkerCrash, resolve_jobs


def _progress(done: int, total: int, label: str) -> None:
    print(f"[{done}/{total}] {label}", file=sys.stderr)


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="hashtable")
    parser.add_argument("--scheme", default="SLPMT")
    parser.add_argument("--ops", type=int, default=1000)
    parser.add_argument("--value-bytes", type=int, default=256)
    parser.add_argument("--seed", type=int, default=2023)


def _cmd_stats(args: argparse.Namespace) -> int:
    run = observed_run(
        args.workload,
        args.scheme,
        num_ops=args.ops,
        value_bytes=args.value_bytes,
        seed=args.seed,
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(run.to_doc(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
        return 0
    print(
        f"{args.workload}/{args.scheme}: {run.result.cycles:,} cycles, "
        f"{run.result.pm_bytes:,} PM bytes over {args.ops} ops"
    )
    print(run.result.stats.report(show_zero=args.show_zero))
    print(run.profiler.format())
    return 0


def _cmd_hist(args: argparse.Namespace) -> int:
    run = observed_run(
        args.workload,
        args.scheme,
        num_ops=args.ops,
        value_bytes=args.value_bytes,
        seed=args.seed,
    )
    print(f"{args.workload}/{args.scheme} distributions ({args.ops} ops)")
    header = f"{'histogram':<18} {'n':>8} {'mean':>12} {'p50':>10} {'p95':>10} {'p99':>10} {'max':>10}"
    print(header)
    print("-" * len(header))
    for name, hist in sorted(run.profiler.histograms.items()):
        if hist.count == 0:
            continue
        s = hist.summary()
        print(
            f"{name:<18} {s['count']:>8} {s['mean']:>12} {s['p50']:>10} "
            f"{s['p95']:>10} {s['p99']:>10} {s['max']:>10}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    system = observed_multicore_ycsb(
        num_cores=args.cores,
        scheme=args.scheme,
        ops_per_core=args.ops,
        value_bytes=args.value_bytes,
        seed=args.seed,
    )
    doc = write_chrome_trace(
        args.out,
        system.tracers(),
        metadata={
            "scheme": args.scheme,
            "cores": args.cores,
            "ops_per_core": args.ops,
            "seed": args.seed,
        },
    )
    problems = validate_chrome_trace(doc)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    merged = system.merged_profiler()
    print(
        f"wrote {args.out}: {len(doc['traceEvents'])} events from "
        f"{args.cores} cores ({system.total_commits()} commits, "
        f"{system.total_aborts()} aborts) — open in ui.perfetto.dev"
    )
    print(merged.format())
    if args.jsonl:
        write_jsonl(args.jsonl, system.tracers())
        print(f"wrote {args.jsonl}")
    return 0


def _flatten(doc: Dict[str, Any], prefix: str = "") -> Dict[str, Any]:
    flat: Dict[str, Any] = {}
    for key, value in doc.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            flat.update(_flatten(value, path))
        else:
            flat[path] = value
    return flat


def _cmd_diff(args: argparse.Namespace) -> int:
    with open(args.a) as fh:
        a = _flatten(json.load(fh))
    with open(args.b) as fh:
        b = _flatten(json.load(fh))
    keys = sorted(set(a) | set(b))
    changed = 0
    for key in keys:
        va, vb = a.get(key), b.get(key)
        if va == vb:
            continue
        changed += 1
        if (
            isinstance(va, (int, float))
            and isinstance(vb, (int, float))
            and va
        ):
            delta = f" ({(vb - va) / va * 100.0:+.2f}%)"
        else:
            delta = ""
        print(f"{key}: {va} -> {vb}{delta}")
    if changed == 0:
        print("identical")
    return 0


def _cmd_passivity(args: argparse.Namespace) -> int:
    """The CI gate: observability on vs off must be bit-identical."""
    if args.telemetry:
        return _cmd_passivity_telemetry(args)
    from repro.harness.runner import run_workload
    from repro.obs.profiler import CycleProfiler
    from repro.core.tracing import Tracer

    failures: List[str] = []
    for workload, scheme in (
        (args.workload, args.scheme),
        ("rbtree", "FG+LG"),
        ("heap", "EDE"),
    ):
        bare = run_workload(
            workload, _scheme(scheme), num_ops=args.ops,
            value_bytes=args.value_bytes, seed=args.seed,
        )
        profiler = CycleProfiler()
        observed = run_workload(
            workload, _scheme(scheme), num_ops=args.ops,
            value_bytes=args.value_bytes, seed=args.seed,
            tracer=Tracer(), profiler=profiler,
        )
        if bare.stats.as_dict() != observed.stats.as_dict():
            diffs = {
                k: (v, observed.stats.as_dict()[k])
                for k, v in bare.stats.as_dict().items()
                if observed.stats.as_dict()[k] != v
            }
            failures.append(f"{workload}/{scheme}: counters drifted {diffs}")
        elif bare.cycles != observed.cycles:
            failures.append(
                f"{workload}/{scheme}: cycles {bare.cycles} != {observed.cycles}"
            )
        elif profiler.total_cycles() != observed.cycles:
            failures.append(
                f"{workload}/{scheme}: phase buckets sum to "
                f"{profiler.total_cycles()}, cycles are {observed.cycles}"
            )
        else:
            print(
                f"passive: {workload}/{scheme} "
                f"({observed.cycles:,} cycles bit-identical, "
                f"buckets sum exactly)"
            )
    for failure in failures:
        print(f"PASSIVITY VIOLATION: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_passivity_telemetry(args: argparse.Namespace) -> int:
    """The windowed-telemetry / request-tracing CI gate.

    Three proofs, exit 1 if any fails:

    1. a service run with telemetry + a request tracer attached is
       bit-identical (cycles, SimStats) to the bare run;
    2. same for a sharded cross-shard run;
    3. two half-runs' telemetry registries merged in submission order
       serialise byte-identically to the registry of recording both
       halves into one — the contract ``--jobs N`` sweeps rely on.
    """
    from repro.core.tracing import Tracer
    from repro.obs.telemetry import TelemetryWindows, merge_telemetry
    from repro.service.server import ServiceConfig, run_service
    from repro.shard.deployment import ShardedConfig, run_sharded

    failures: List[str] = []

    svc_cfg = ServiceConfig(
        workload=args.workload, scheme=args.scheme, seed=args.seed
    )
    bare = run_service(svc_cfg)
    telemetry = TelemetryWindows()
    observed = run_service(
        svc_cfg, telemetry=telemetry, request_tracer=Tracer()
    )
    if bare.stats.as_dict() != observed.stats.as_dict():
        failures.append(
            f"service {svc_cfg.workload}/{svc_cfg.scheme}: "
            "SimStats drifted with telemetry attached"
        )
    elif bare.cycles != observed.cycles:
        failures.append(
            f"service {svc_cfg.workload}/{svc_cfg.scheme}: cycles "
            f"{bare.cycles} != {observed.cycles}"
        )
    else:
        print(
            f"passive: service {svc_cfg.workload}/{svc_cfg.scheme} "
            f"telemetry+tracing attached, {observed.cycles:,} cycles "
            f"bit-identical ({telemetry.total('acked')} acks windowed)"
        )

    shard_cfg = ShardedConfig(
        workload=args.workload, scheme=args.scheme, seed=args.seed
    )
    bare_sh = run_sharded(shard_cfg)
    sh_tel = TelemetryWindows()
    observed_sh = run_sharded(
        shard_cfg, telemetry=sh_tel, request_tracer=Tracer()
    )
    if bare_sh.stats.as_dict() != observed_sh.stats.as_dict():
        failures.append(
            f"sharded {shard_cfg.workload}/{shard_cfg.scheme}: "
            "SimStats drifted with telemetry attached"
        )
    elif (bare_sh.cycles, bare_sh.pm_bytes) != (
        observed_sh.cycles, observed_sh.pm_bytes
    ):
        failures.append(
            f"sharded {shard_cfg.workload}/{shard_cfg.scheme}: "
            f"cycles/pm_bytes ({bare_sh.cycles}, {bare_sh.pm_bytes}) != "
            f"({observed_sh.cycles}, {observed_sh.pm_bytes})"
        )
    else:
        print(
            f"passive: sharded {shard_cfg.workload}/{shard_cfg.scheme} "
            f"telemetry+tracing attached, {observed_sh.cycles:,} cycles "
            f"bit-identical ({sh_tel.total('decisions')} 2PC decisions "
            "windowed)"
        )

    # Merge determinism: record two disjoint seeds into separate
    # registries, merge, compare byte-for-byte against one registry
    # that saw both runs.
    split_a, split_b = TelemetryWindows(), TelemetryWindows()
    serial = TelemetryWindows()
    for seed, part in ((args.seed, split_a), (args.seed + 1, split_b)):
        cfg = ServiceConfig(
            workload=args.workload, scheme=args.scheme, seed=seed
        )
        run_service(cfg, telemetry=part)
        run_service(cfg, telemetry=serial)
    merged = merge_telemetry([split_a, split_b])
    a = json.dumps(merged.to_dict(), sort_keys=True)
    b = json.dumps(serial.to_dict(), sort_keys=True)
    if a != b:
        failures.append(
            "telemetry merge: split registries merged != serial registry"
        )
    else:
        print(
            f"merge: split-vs-serial telemetry byte-identical "
            f"({len(merged)} windows, {len(a)} JSON bytes)"
        )

    for failure in failures:
        print(f"PASSIVITY VIOLATION: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _scheme(name: str):
    from repro.core.schemes import scheme_by_name

    return scheme_by_name(name)


def _diff_keys(a: Dict[str, Any], b: Dict[str, Any]) -> List[str]:
    fa, fb = _flatten(a), _flatten(b)
    return [k for k in sorted(set(fa) | set(fb)) if fa.get(k) != fb.get(k)]


def _model_equivalence(jobs: int) -> int:
    """``obs equivalence --model``: serial vs ``--jobs N`` byte-identity
    of the model pipeline.

    Fits a reduced training grid twice (serial, parallel) and predicts
    + spot-checks a reduced ``bench --model`` grid twice; both document
    pairs must agree exactly after :func:`~repro.obs.bench.strip_host`
    (which removes host timing and the per-training-cell ``host_ms``
    fit metadata — every simulated observation, coefficient, residual
    and prediction is compared).  Also proves the checked-in artifact
    still matches this build's phase/feature schema.
    """
    from repro.model.fit import DEFAULT_MODEL_PATH, fit_model
    from repro.model.predict import ModelSchemaError, load_model

    failures = 0
    grid = dict(
        workloads=("hashtable", "rbtree"),
        schemes=("FG", "SLPMT"),
        ops_grid=(40, 80, 120, 160),
        value_bytes_grid=(64, 128),
    )
    serial_fit = bench_mod.strip_host(fit_model(jobs=1, **grid))
    parallel_fit = bench_mod.strip_host(
        fit_model(jobs=jobs, progress=_progress, **grid)
    )
    if serial_fit != parallel_fit:
        for key in _diff_keys(serial_fit, parallel_fit)[:20]:
            print(
                f"EQUIVALENCE VIOLATION model fit serial vs --jobs {jobs}: "
                f"{key}",
                file=sys.stderr,
            )
        failures += 1
    else:
        print(
            f"equivalence: model fit --jobs {jobs} byte-identical to "
            f"serial ({len(serial_fit['training_cells'])} training cells, "
            "modulo host timing)"
        )
    try:
        load_model(DEFAULT_MODEL_PATH)
    except FileNotFoundError:
        print(f"equivalence: no {DEFAULT_MODEL_PATH} checked in, skipping")
        return 1 if failures else 0
    except ModelSchemaError as exc:
        print(
            f"EQUIVALENCE VIOLATION {DEFAULT_MODEL_PATH}: {exc}",
            file=sys.stderr,
        )
        return 1
    bench_grid = dict(
        ops_grid=tuple(range(50, 301, 50)),
        value_bytes_grid=(64, 128, 256),
        spot_checks=3,
    )
    serial_bench = bench_mod.strip_host(
        bench_mod.run_model_bench(jobs=1, **bench_grid)
    )
    parallel_bench = bench_mod.strip_host(
        bench_mod.run_model_bench(jobs=jobs, progress=_progress, **bench_grid)
    )
    if serial_bench != parallel_bench:
        for key in _diff_keys(serial_bench, parallel_bench)[:20]:
            print(
                "EQUIVALENCE VIOLATION bench --model serial vs "
                f"--jobs {jobs}: {key}",
                file=sys.stderr,
            )
        failures += 1
    else:
        print(
            f"equivalence: bench --model --jobs {jobs} byte-identical to "
            f"serial ({len(serial_bench['cells'])} predicted cells, "
            f"{len(serial_bench['spot_check']['cells'])} spot-checks, "
            "modulo host timing)"
        )
    return 1 if failures else 0


def _sustained_equivalence(jobs: int) -> int:
    """``obs equivalence --sustained``: serial vs ``--jobs N``
    byte-identity of the sharded-population merge.

    Runs a reduced sustained shape — 3 populations whose final windows
    straddle the horizon (the duration is deliberately not a multiple
    of the window width) — twice, and requires the two documents to
    agree exactly after :func:`~repro.obs.bench.strip_host`.  The
    ``telemetry_sha256`` field inside the document pins the merged
    registry at full resolution, so this is the merged-telemetry
    byte-identity gate, not just a totals check.
    """
    from repro.service.sustained import run_sustained

    shape = dict(
        populations=3,
        clients_per_population=3,
        duration_cycles=300_000,   # 300000 / 8192 = 36.6 windows: the
        window_cycles=8192,        # final window straddles the horizon
        arrival_cycles=2500,
        num_keys=48,
        locking=True,
    )
    serial = bench_mod.strip_host(run_sustained(jobs=1, **shape))
    parallel = bench_mod.strip_host(
        run_sustained(jobs=jobs, progress=_progress, **shape)
    )
    if serial != parallel:
        for key in _diff_keys(serial, parallel)[:20]:
            print(
                f"EQUIVALENCE VIOLATION sustained serial vs --jobs {jobs}: "
                f"{key}",
                file=sys.stderr,
            )
        return 1
    print(
        f"equivalence: sustained --jobs {jobs} byte-identical to serial "
        f"({shape['populations']} populations, "
        f"{serial['totals']['requests']} requests, merged telemetry "
        f"sha256 {serial['telemetry_sha256'][:16]})"
    )
    return 0


def _cmd_equivalence(args: argparse.Namespace) -> int:
    """The parallel==serial gate: a ``--jobs N`` sweep must be
    byte-identical to the serial sweep (modulo host timing), and both
    must be bit-identical to the checked-in baseline's simulated
    numbers."""
    jobs = max(2, resolve_jobs(args.jobs))
    if args.model:
        return _model_equivalence(jobs)
    if args.sustained:
        return _sustained_equivalence(jobs)
    if args.service:
        from repro.service import bench as svc_bench

        baseline_path = args.baseline or svc_bench.DEFAULT_SERVICE_BASELINE
        baseline = bench_mod.load_bench(baseline_path)
        params = baseline["params"]
        kwargs = dict(
            name=baseline["name"],
            workloads=tuple(params["workloads"]),
            schemes=tuple(params["schemes"]),
            batches=tuple(params["batches"]),
            num_clients=params["num_clients"],
            requests_per_client=params["requests_per_client"],
            value_bytes=params["value_bytes"],
            num_keys=params["num_keys"],
            theta=params["theta"],
            arrival_cycles=params["arrival_cycles"],
            max_wait_cycles=params["max_wait_cycles"],
            max_depth=params["max_depth"],
            seed=params["seed"],
            duration_cycles=params.get("duration_cycles"),
            target_load=params.get("target_load"),
        )
        run = svc_bench.run_service_bench
    elif args.twopc:
        from repro.shard import bench as shard_bench

        baseline_path = args.baseline or shard_bench.DEFAULT_TWOPC_BASELINE
        baseline = bench_mod.load_bench(baseline_path)
        params = baseline["params"]
        kwargs = dict(
            name=baseline["name"],
            workloads=tuple(params["workloads"]),
            schemes=tuple(params["schemes"]),
            spans=tuple(params["spans"]),
            num_shards=params["num_shards"],
            num_clients=params["num_clients"],
            requests_per_client=params["requests_per_client"],
            value_bytes=params["value_bytes"],
            num_keys=params["num_keys"],
            theta=params["theta"],
            arrival_cycles=params["arrival_cycles"],
            batch_size=params["batch_size"],
            max_wait_cycles=params["max_wait_cycles"],
            seed=params["seed"],
        )
        run = shard_bench.run_twopc_bench
    elif args.multicore:
        baseline_path = args.baseline or bench_mod.DEFAULT_MULTICORE_BASELINE
        baseline = bench_mod.load_bench(baseline_path)
        params = baseline["params"]
        kwargs = dict(
            name=baseline["name"],
            workloads=tuple(params["workloads"]),
            schemes=tuple(params["schemes"]),
            cores=tuple(params["cores"]),
            thetas=tuple(params["thetas"]),
            ops_per_core=params["ops_per_core"],
            num_keys=params["num_keys"],
            value_bytes=params["value_bytes"],
            seed=params["seed"],
        )
        run = bench_mod.run_multicore_bench
    else:
        baseline_path = args.baseline or bench_mod.DEFAULT_BASELINE
        baseline = bench_mod.load_bench(baseline_path)
        params = baseline["params"]
        kwargs = dict(
            name=baseline["name"],
            workloads=tuple(params["workloads"]),
            schemes=tuple(params["schemes"]),
            num_ops=params["num_ops"],
            value_bytes=params["value_bytes"],
            seed=params["seed"],
        )
        run = bench_mod.run_bench
    serial = run(jobs=1, **kwargs)
    parallel = run(jobs=jobs, progress=_progress, **kwargs)

    failures = 0
    a = bench_mod.strip_host(serial)
    b = bench_mod.strip_host(parallel)
    if a != b:
        for key in _diff_keys(a, b)[:20]:
            print(
                f"EQUIVALENCE VIOLATION serial vs --jobs {jobs}: {key}",
                file=sys.stderr,
            )
        failures += 1
    else:
        print(
            f"equivalence: --jobs {jobs} byte-identical to serial "
            f"({len(a['cells'])} cells, modulo host timing)"
        )
    base_sim = bench_mod.strip_host(baseline)
    if a != base_sim:
        for key in _diff_keys(a, base_sim)[:20]:
            print(
                f"EQUIVALENCE VIOLATION vs {baseline_path}: {key}",
                file=sys.stderr,
            )
        failures += 1
    else:
        print(
            f"equivalence: simulated numbers bit-identical to {baseline_path}"
        )
    return 1 if failures else 0


def obs_main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Observability: stats dumps, histograms, traces, diffs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="run once, dump stats + attribution")
    _add_run_args(p_stats)
    p_stats.add_argument("--json", help="write a diffable JSON snapshot here")
    p_stats.add_argument(
        "--show-zero", action="store_true",
        help="include zero-valued counters (stable line set for diffing)",
    )
    p_stats.set_defaults(func=_cmd_stats)

    p_hist = sub.add_parser("hist", help="run once, print histogram summary")
    _add_run_args(p_hist)
    p_hist.set_defaults(func=_cmd_hist)

    p_trace = sub.add_parser(
        "trace", help="multicore YCSB run -> Perfetto trace JSON"
    )
    p_trace.add_argument("--cores", type=int, default=4)
    p_trace.add_argument("--scheme", default="SLPMT")
    p_trace.add_argument("--ops", type=int, default=50, help="inserts per core")
    p_trace.add_argument("--value-bytes", type=int, default=64)
    p_trace.add_argument("--seed", type=int, default=2023)
    p_trace.add_argument("--out", default="trace.json")
    p_trace.add_argument("--jsonl", help="also write a JSONL event stream")
    p_trace.set_defaults(func=_cmd_trace)

    p_diff = sub.add_parser("diff", help="diff two obs stats JSON snapshots")
    p_diff.add_argument("a")
    p_diff.add_argument("b")
    p_diff.set_defaults(func=_cmd_diff)

    p_pass = sub.add_parser(
        "passivity",
        help="prove obs changes nothing (exit 1 on any counter drift)",
    )
    _add_run_args(p_pass)
    p_pass.add_argument(
        "--telemetry", action="store_true",
        help="gate the windowed-telemetry + request-tracing layer "
        "instead (service + sharded runs, plus split-vs-serial merge "
        "byte-identity)",
    )
    p_pass.set_defaults(func=_cmd_passivity)

    p_equiv = sub.add_parser(
        "equivalence",
        help="prove a parallel bench sweep is byte-identical to serial "
        "and to the checked-in baseline (exit 1 on any diff)",
    )
    p_equiv.add_argument(
        "--jobs", type=int, default=None,
        help="parallel worker count to compare against serial "
        "(default REPRO_JOBS, at least 2)",
    )
    p_equiv.add_argument(
        "--baseline", default=None,
        help=f"baseline artifact path (default {bench_mod.DEFAULT_BASELINE})",
    )
    p_equiv.add_argument(
        "--multicore", action="store_true",
        help="check the contention sweep against "
        f"{bench_mod.DEFAULT_MULTICORE_BASELINE} instead",
    )
    p_equiv.add_argument(
        "--service", action="store_true",
        help="check the transaction-service sweep against "
        "BENCH_service.json instead",
    )
    p_equiv.add_argument(
        "--twopc", action="store_true",
        help="check the cross-shard 2PC sweep against "
        "BENCH_twopc.json instead",
    )
    p_equiv.add_argument(
        "--model", action="store_true",
        help="check the cost-model pipeline instead: reduced-grid fit "
        "and bench --model documents must be byte-identical between "
        "serial and --jobs N (modulo host timing)",
    )
    p_equiv.add_argument(
        "--sustained", action="store_true",
        help="check the sharded-population sustained run instead: a "
        "reduced 3-population duration-mode run must merge "
        "byte-identically between serial and --jobs N",
    )
    p_equiv.set_defaults(func=_cmd_equivalence)

    args = parser.parse_args(argv)
    return args.func(args)


#: Checked-in curve artifacts (JSON document + gnuplot table).
CURVE_JSON = "benchmarks/results/curve_service.json"
CURVE_TABLE = "benchmarks/results/curve_service.tsv"


def _bench_curves(args: argparse.Namespace) -> int:
    """``bench --curves``: the arrival-rate sweep artifact pipeline.

    Runs the deterministic curve sweep, then: ``--update`` re-pins the
    checked-in JSON + table, ``--check`` fails if the fresh sweep
    differs from the checked-in JSON at all (the document holds only
    simulated numbers), otherwise prints the curve.
    """
    import os

    from repro.service.curve import curve_to_table, format_curve, run_curve

    jobs = resolve_jobs(args.jobs)
    try:
        doc = run_curve(
            seed=args.seed,
            jobs=jobs,
            duration_cycles=args.duration,
            progress=_progress if jobs > 1 else None,
        )
    except WorkerCrash as exc:
        print(f"curve sweep failed: {exc}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.update:
        os.makedirs(os.path.dirname(CURVE_JSON), exist_ok=True)
        with open(CURVE_JSON, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        with open(CURVE_TABLE, "w") as fh:
            fh.write(curve_to_table(doc))
        print(f"wrote {CURVE_JSON}")
        print(f"wrote {CURVE_TABLE}")
        return 0
    if args.check:
        with open(CURVE_JSON) as fh:
            baseline = json.load(fh)
        if doc != baseline:
            for key in _diff_keys(
                {"points": {str(i): p for i, p in enumerate(doc["points"])},
                 "knees": doc["knees"]},
                {"points": {str(i): p
                            for i, p in enumerate(baseline["points"])},
                 "knees": baseline["knees"]},
            )[:20]:
                print(
                    f"CURVE DRIFT vs {CURVE_JSON}: {key}", file=sys.stderr
                )
            return 1
        print(
            f"curves: fresh sweep byte-identical to {CURVE_JSON} "
            f"({len(doc['points'])} load points)"
        )
        return 0
    print(format_curve(doc))
    return 0


def _bench_sustained(args: argparse.Namespace) -> int:
    """``bench --sustained``: the campaign-scale sustained artifact.

    Runs the default sharded-population deployment (4 populations x 8
    clients in duration mode — just over a million requests), then:
    ``--update`` re-pins ``benchmarks/results/sustained_service.json``,
    ``--check`` fails if the fresh run differs from the checked-in
    document anywhere outside host timing, otherwise prints the
    summary.  ``--duration``/``--target-load``/``--seed``/``--jobs``
    override the run shape (gated runs must keep the baseline's).
    """
    import os

    from repro.service.sustained import (
        DEFAULT_SUSTAINED_PATH,
        format_sustained,
        load_sustained,
        run_sustained,
        write_sustained,
    )

    jobs = resolve_jobs(args.jobs)
    kwargs = dict(seed=args.seed, jobs=jobs)
    if args.duration is not None:
        kwargs["duration_cycles"] = args.duration
    if args.target_load is not None:
        kwargs["target_load"] = args.target_load
    try:
        doc = run_sustained(
            progress=_progress if jobs > 1 else None, **kwargs
        )
    except WorkerCrash as exc:
        print(f"sustained run failed: {exc}", file=sys.stderr)
        return 1
    if args.out:
        write_sustained(args.out, doc)
        print(f"wrote {args.out}")
    if args.update:
        os.makedirs(os.path.dirname(DEFAULT_SUSTAINED_PATH), exist_ok=True)
        write_sustained(DEFAULT_SUSTAINED_PATH, doc)
        print(f"wrote {DEFAULT_SUSTAINED_PATH}")
        return 0
    if args.check:
        baseline = load_sustained(DEFAULT_SUSTAINED_PATH)
        fresh = bench_mod.strip_host(doc)
        pinned = bench_mod.strip_host(baseline)
        if fresh != pinned:
            for key in _diff_keys(fresh, pinned)[:20]:
                print(
                    f"SUSTAINED DRIFT vs {DEFAULT_SUSTAINED_PATH}: {key}",
                    file=sys.stderr,
                )
            return 1
        print(
            f"sustained: fresh run byte-identical to "
            f"{DEFAULT_SUSTAINED_PATH} "
            f"({doc['totals']['requests']:,} requests across "
            f"{doc['params']['populations']} populations, merged "
            f"telemetry sha256 {doc['telemetry_sha256'][:16]})"
        )
        return 0
    print(format_sustained(doc))
    return 0


def _bench_model(args: argparse.Namespace) -> int:
    """``bench --model``: the surrogate tier.

    Predicts the campaign-scale grid from the checked-in cost model (no
    simulation), then audits a seeded sample of cells with the real
    simulator; exit status is the spot-check verdict.
    """
    from repro.model.predict import ModelSchemaError

    jobs = resolve_jobs(args.jobs)
    try:
        doc = bench_mod.run_model_bench(
            name=args.name or "model",
            model_path=args.model_path,
            seed=args.seed,
            spot_checks=args.spot_checks
            if args.spot_checks is not None
            else bench_mod.DEFAULT_SPOT_CHECKS,
            max_error=args.max_error,
            jobs=jobs,
            progress=_progress if jobs > 1 else None,
        )
    except FileNotFoundError as exc:
        print(
            f"model bench failed: {exc} "
            "(fit one first: python -m repro model fit)",
            file=sys.stderr,
        )
        return 1
    except ModelSchemaError as exc:
        print(f"model bench failed: {exc}", file=sys.stderr)
        return 1
    except WorkerCrash as exc:
        print(f"model bench failed: {exc}", file=sys.stderr)
        return 1
    if args.out:
        bench_mod.write_bench(args.out, doc)
        print(f"wrote {args.out}")
    print(bench_mod.format_model_bench(doc))
    return 0 if doc["spot_check"]["ok"] else 1


def bench_main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="BENCH_*.json perf artifacts and the regression gate.",
    )
    parser.add_argument("--name", default=None,
                        help="artifact name (default slpmt_ycsb, or "
                        "multicore with --multicore)")
    parser.add_argument("--ops", type=int, default=None,
                        help=f"ops per run (default {bench_mod.DEFAULT_NUM_OPS}"
                        f", or {bench_mod.DEFAULT_MULTICORE_OPS} per core "
                        "with --multicore)")
    parser.add_argument(
        "--value-bytes", type=int, default=bench_mod.DEFAULT_VALUE_BYTES
    )
    parser.add_argument("--seed", type=int, default=bench_mod.DEFAULT_SEED)
    parser.add_argument(
        "--multicore", action="store_true",
        help="sweep the shared-key contention grid (workload × scheme × "
        "cores × θ) instead of the single-core scheme grid",
    )
    parser.add_argument(
        "--service", action="store_true",
        help="sweep the transaction-service grid (workload × scheme × "
        "group-commit batch size); uses the service grid's own knobs "
        "(--ops/--value-bytes are ignored), honours --seed/--jobs",
    )
    parser.add_argument(
        "--twopc", action="store_true",
        help="sweep the cross-shard 2PC grid (workload × scheme × "
        "transaction span at a fixed shard count); uses the shard "
        "grid's own knobs (--ops/--value-bytes are ignored), honours "
        "--seed/--jobs/--spans",
    )
    parser.add_argument(
        "--spans", type=str, default=None,
        help="comma-separated txn_keys spans for --twopc (default "
        "2,4,8)",
    )
    parser.add_argument(
        "--curves", action="store_true",
        help="sweep arrival rates per scheme and write the "
        "throughput-vs-latency curve artifacts "
        "(benchmarks/results/curve_service.json + .tsv); honours "
        "--seed/--jobs/--check/--update/--duration",
    )
    parser.add_argument(
        "--sustained", action="store_true",
        help="run the campaign-scale sharded-population deployment "
        "(duration mode, ~1M requests) and gate/update "
        "benchmarks/results/sustained_service.json; honours "
        "--seed/--jobs/--check/--update/--duration/--target-load",
    )
    parser.add_argument(
        "--duration", type=int, default=None, metavar="CYCLES",
        help="duration mode for --service/--curves/--sustained: every "
        "run serves until the simulated clock passes this horizon "
        "instead of a fixed request count",
    )
    parser.add_argument(
        "--target-load", type=float, default=None, metavar="REQS_PER_KCYC",
        help="offered load in requests per 1000 cycles for "
        "--service/--sustained (spread over the clients; overrides the "
        "arrival gap)",
    )
    parser.add_argument(
        "--model", action="store_true",
        help="predict the campaign-scale grid from the fitted cost "
        "model (benchmarks/results/cost_model.json) and spot-check a "
        "seeded sample against the real simulator; exits 1 if any "
        "spot-check exceeds --max-error",
    )
    parser.add_argument(
        "--model-path", default=None,
        help="cost model artifact for --model (default "
        "benchmarks/results/cost_model.json)",
    )
    parser.add_argument(
        "--spot-checks", type=int, default=None,
        help="simulator audit cells for --model (default "
        f"{bench_mod.DEFAULT_SPOT_CHECKS})",
    )
    parser.add_argument(
        "--max-error", type=float, default=None,
        help="per-spot-check relative-error gate for --model "
        "(default 0.05)",
    )
    parser.add_argument(
        "--best-of", type=int, default=1,
        help="repeat the default sweep N times and report the minimum "
        "wall-clock (run memo cleared between reps; simulated numbers "
        "are identical across reps)",
    )
    parser.add_argument(
        "--cores", type=str, default=None,
        help="comma-separated core counts for --multicore (default "
        + ",".join(str(c) for c in bench_mod.MULTICORE_CORES) + ")",
    )
    parser.add_argument(
        "--thetas", type=str, default=None,
        help="comma-separated zipfian skews for --multicore (default "
        + ",".join(f"{t:g}" for t in bench_mod.MULTICORE_THETAS) + ")",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="baseline artifact path (default BENCH_<name>.json)",
    )
    parser.add_argument(
        "--threshold", type=float, default=bench_mod.DEFAULT_THRESHOLD,
        help="allowed relative drift before --check fails (default 0.02)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="write the fresh sweep over the baseline file",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the sweep (default REPRO_JOBS or 1); "
        "output is byte-identical to serial modulo host timing",
    )
    parser.add_argument(
        "--out", default=None,
        help="also write the fresh sweep document to this path",
    )
    args = parser.parse_args(argv)
    if (args.cores or args.thetas) and not args.multicore:
        raise SystemExit("--cores/--thetas require --multicore")
    if args.spans and not args.twopc:
        raise SystemExit("--spans requires --twopc")
    if sum(
        (args.multicore, args.service, args.twopc, args.curves, args.model,
         args.sustained)
    ) > 1:
        raise SystemExit(
            "--multicore/--service/--twopc/--curves/--model/--sustained "
            "are mutually exclusive"
        )
    if args.duration is not None and not (
        args.service or args.curves or args.sustained
    ):
        raise SystemExit("--duration requires --service/--curves/--sustained")
    if args.target_load is not None and not (args.service or args.sustained):
        raise SystemExit("--target-load requires --service/--sustained")
    if (
        args.model_path or args.spot_checks is not None
        or args.max_error is not None
    ) and not args.model:
        raise SystemExit(
            "--model-path/--spot-checks/--max-error require --model"
        )
    if args.best_of > 1 and (
        args.multicore or args.service or args.twopc or args.curves
        or args.model or args.sustained
    ):
        raise SystemExit("--best-of only applies to the default sweep")
    if args.curves:
        return _bench_curves(args)
    if args.model:
        return _bench_model(args)
    if args.sustained:
        return _bench_sustained(args)

    jobs = resolve_jobs(args.jobs)
    name = args.name or (
        "twopc"
        if args.twopc
        else "service"
        if args.service
        else "multicore"
        if args.multicore
        else "slpmt_ycsb"
    )
    baseline_path = args.baseline or bench_mod.bench_name(name)
    try:
        if args.twopc:
            from repro.shard.bench import TWOPC_SPANS, run_twopc_bench

            spans = (
                tuple(int(s) for s in args.spans.split(","))
                if args.spans
                else TWOPC_SPANS
            )
            doc = run_twopc_bench(
                name=name,
                spans=spans,
                seed=args.seed,
                jobs=jobs,
                progress=_progress if jobs > 1 else None,
            )
        elif args.service:
            from repro.service.bench import run_service_bench

            doc = run_service_bench(
                name=name,
                seed=args.seed,
                duration_cycles=args.duration,
                target_load=args.target_load,
                jobs=jobs,
                progress=_progress if jobs > 1 else None,
            )
        elif args.multicore:
            cores = (
                tuple(int(c) for c in args.cores.split(","))
                if args.cores
                else bench_mod.MULTICORE_CORES
            )
            thetas = (
                tuple(float(t) for t in args.thetas.split(","))
                if args.thetas
                else bench_mod.MULTICORE_THETAS
            )
            doc = bench_mod.run_multicore_bench(
                name=name,
                cores=cores,
                thetas=thetas,
                ops_per_core=args.ops
                if args.ops is not None
                else bench_mod.DEFAULT_MULTICORE_OPS,
                value_bytes=args.value_bytes,
                seed=args.seed,
                jobs=jobs,
                progress=_progress if jobs > 1 else None,
            )
        else:
            doc = bench_mod.run_bench(
                name=name,
                num_ops=args.ops
                if args.ops is not None
                else bench_mod.DEFAULT_NUM_OPS,
                value_bytes=args.value_bytes,
                seed=args.seed,
                jobs=jobs,
                best_of=args.best_of,
                progress=_progress if jobs > 1 else None,
            )
    except WorkerCrash as exc:
        print(f"bench sweep failed: {exc}", file=sys.stderr)
        return 1
    if args.out:
        bench_mod.write_bench(args.out, doc)
        print(f"wrote {args.out}")
    if args.update:
        bench_mod.write_bench(baseline_path, doc)
        print(f"wrote {baseline_path}")
        return 0
    if args.check:
        baseline = bench_mod.load_bench(baseline_path)
        result = bench_mod.check_bench(
            doc, baseline, threshold=args.threshold
        )
        print(bench_mod.format_check(result, threshold=args.threshold))
        return 0 if result.ok else 1
    for scheme, geo in doc["geomean"].items():
        print(
            f"{scheme:<8} geomean cycles={geo['cycles']:>14,.0f}  "
            f"pm_bytes={geo['pm_bytes']:>12,.0f}"
        )
    for scheme, amort in doc.get("amortization", {}).items():
        if "span_lo" in amort:
            axis = f"decide-persist/xwrite k{amort['span_lo']}->k{amort['span_hi']}"
        else:
            axis = (
                "commit-persist/write "
                f"b{amort['batch_lo']}->b{amort['batch_hi']}"
            )
        print(
            f"{scheme:<8} {axis} amortization: "
            f"{amort['geomean']:.2f}x geomean "
            + " ".join(
                f"{w}={r:.2f}x" for w, r in amort["per_workload"].items()
            )
        )
    host = doc.get("host", {})
    if host.get("best_of", 1) > 1:
        reps = " ".join(f"{s:.3f}" for s in host.get("rep_seconds", []))
        print(
            f"wall-clock best-of-{host['best_of']}: {host['seconds']:.3f}s "
            f"(reps: {reps})"
        )
    return 0
