"""Steady-state detection, warm-up trimming and knee finding.

The windowed telemetry of a serving run starts with a warm-up: cold
caches, an empty admission queue, the first group-commit batches still
filling.  Quoting a throughput or a tail latency that averages the
warm-up in understates the steady system, so every curve this repo
reports runs the same deterministic pipeline:

1. **Steady-state detection** (:func:`steady_window_range`): the
   earliest window *s* such that every remaining windowed value stays
   within ``rel_tol`` of the mean over ``[s, end)`` — a windowed-mean
   convergence test.  The trailing tail windows (the drain after the
   last arrival, which is ramp-*down*, not steady state) are first
   clipped by ``drop_tail``.
2. **Warm-up trimming**: everything before *s* is discarded;
   throughput and latency quantiles are recomputed over the steady
   range only (:func:`steady_summary` works directly on a
   :class:`~repro.obs.telemetry.TelemetryWindows`).
3. **Knee finding** (:func:`knee_index`): across the load points of one
   scheme, the knee of the throughput-vs-latency curve — the last load
   point that buys throughput without paying the latency blow-up —
   found with a normalised difference test (Kneedle-style, integer/
   float arithmetic only, fully deterministic).

All functions are pure: sequences in, indices/summaries out.  Nothing
here touches a machine.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.telemetry import TelemetryWindows

#: Windowed values within ±25% of the remaining mean count as converged
#: (windows hold few tens of requests, so integer arrival noise alone
#: is ~10–15%; tighter tolerances reject genuinely settled runs).
DEFAULT_REL_TOL = 0.25

#: A steady range must cover at least this many windows to be credible.
DEFAULT_MIN_WINDOWS = 3

#: Tail windows clipped before detection (arrival drain / final flush).
DEFAULT_DROP_TAIL = 1

#: Extra tail windows detection may additionally discard: the ramp-down
#: of an overloaded run can straddle a window boundary (a rebinned
#: series' last occupied window is usually partial), so the drain shows
#: up as up to two trailing low windows, not one.
DEFAULT_MAX_TAIL_EXTRA = 2


def steady_window_range(
    values: "Sequence[float]",
    *,
    rel_tol: float = DEFAULT_REL_TOL,
    min_windows: int = DEFAULT_MIN_WINDOWS,
    drop_tail: int = DEFAULT_DROP_TAIL,
    max_tail_extra: int = DEFAULT_MAX_TAIL_EXTRA,
) -> "Optional[Tuple[int, int]]":
    """The steady ``[start, end)`` window range of a throughput series.

    After clipping *drop_tail* trailing windows, finds the latest end
    *e* (shrinking by at most *max_tail_extra* further windows, for a
    ramp-down that straddles a window boundary) and, for that end, the
    earliest start *s* such that every value in ``values[s:e]`` lies
    within ``rel_tol`` relative distance of the mean over that range,
    with the range at least *min_windows* wide.  ``None`` when no such
    range exists — the run never settled.
    """
    if min_windows < 1:
        raise ValueError("min_windows must be positive")
    hard_end = len(values) - max(0, drop_tail)
    lowest_end = max(min_windows, hard_end - max(0, max_tail_extra))
    for end in range(hard_end, lowest_end - 1, -1):
        if end < min_windows:
            break
        for start in range(0, end - min_windows + 1):
            window = values[start:end]
            mean = sum(window) / len(window)
            if mean <= 0:
                continue
            if all(abs(v - mean) <= rel_tol * mean for v in window):
                return (start, end)
    return None


def steady_summary(
    telemetry: TelemetryWindows,
    *,
    counter: str = "acked",
    latency: str = "latency",
    rel_tol: float = DEFAULT_REL_TOL,
    min_windows: int = DEFAULT_MIN_WINDOWS,
    drop_tail: int = DEFAULT_DROP_TAIL,
    max_tail_extra: int = DEFAULT_MAX_TAIL_EXTRA,
    horizon_cycles: "Optional[int]" = None,
) -> Dict[str, Any]:
    """Warm-up-trimmed headline numbers for one telemetry registry.

    Detects the steady range on the *counter* series, then reports the
    steady throughput (events per kilocycle) and the latency quantiles
    of the merged steady-window histogram.  When detection fails, falls
    back to the full run minus the clipped tail (clamped so at least
    *min_windows* windows are quoted) and says so (``"steady": false``)
    — a curve cell is never silently quoted from an unsettled run, and
    the fallback never re-includes the ramp-down windows detection was
    told to drop.

    *horizon_cycles* is the duration-mode cutoff: only windows that end
    at or before the horizon are *full* windows, so the series is first
    clipped to ``horizon_cycles // window_cycles`` — the straddled
    partial window (and the post-horizon queue drain) never biases the
    steady throughput.
    """
    series = telemetry.series(counter)
    if horizon_cycles is not None:
        series = series[: max(0, horizon_cycles // telemetry.window_cycles)]
    found = steady_window_range(
        series,
        rel_tol=rel_tol,
        min_windows=min_windows,
        drop_tail=drop_tail,
        max_tail_extra=max_tail_extra,
    )
    if found is not None:
        lo, hi = found
        steady = True
    else:
        lo = 0
        hi = max(
            min(min_windows, len(series)), len(series) - max(0, drop_tail)
        )
        steady = False
    windows = list(range(lo, hi))
    hist = telemetry.merged_hist(latency, windows)
    lat = hist.summary()
    out = {
        "steady": steady,
        "window_cycles": telemetry.window_cycles,
        "windows_total": len(series),
        "window_lo": lo,
        "window_hi": hi,
        "warmup_trimmed": lo,
        "tail_trimmed": len(series) - hi,
        "throughput_kcyc": round(
            telemetry.throughput_per_kcycle(counter, windows), 4
        ),
        "latency": lat,
    }
    if horizon_cycles is not None:
        out["horizon_cycles"] = horizon_cycles
    return out


def knee_index(
    throughputs: "Sequence[float]",
    latencies: "Sequence[float]",
) -> int:
    """Index of the knee of a throughput-vs-latency curve.

    Points must be ordered by increasing offered load.  Both axes are
    normalised to ``[0, 1]``; the knee is the point maximising
    ``norm(throughput) - norm(latency)`` — the furthest the curve gets
    above the diagonal, i.e. the last point that gains throughput
    faster than it pays latency (Kneedle's difference curve).  Ties
    break toward the *lower* load point (first maximum), and a flat or
    single-point curve returns index 0.
    """
    if len(throughputs) != len(latencies):
        raise ValueError("throughputs and latencies must align")
    n = len(throughputs)
    if n == 0:
        raise ValueError("knee of an empty curve")
    if n == 1:
        return 0
    t_lo, t_hi = min(throughputs), max(throughputs)
    l_lo, l_hi = min(latencies), max(latencies)
    t_span = (t_hi - t_lo) or 1.0
    l_span = (l_hi - l_lo) or 1.0
    best, best_score = 0, float("-inf")
    for i in range(n):
        score = (throughputs[i] - t_lo) / t_span - (latencies[i] - l_lo) / l_span
        if score > best_score + 1e-12:
            best, best_score = i, score
    return best


def curve_table(
    rows: "Sequence[Dict[str, Any]]",
    *,
    columns: "Sequence[str]" = (
        "scheme",
        "arrival_cycles",
        "offered_kcyc",
        "throughput_kcyc",
        "p50",
        "p95",
        "p99",
        "window_lo",
        "window_hi",
        "steady",
        "knee",
    ),
) -> str:
    """A gnuplot-friendly table: ``#``-prefixed header, whitespace-
    separated columns, one load point per line, blank line between
    schemes (gnuplot dataset blocks)."""
    lines = ["# " + "\t".join(columns)]
    prev_scheme: "Optional[str]" = None
    for row in rows:
        scheme = str(row.get("scheme", ""))
        if prev_scheme is not None and scheme != prev_scheme:
            lines.append("")
        prev_scheme = scheme
        lines.append(
            "\t".join(_cell(row.get(col)) for col in columns)
        )
    return "\n".join(lines) + "\n"


def _cell(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
