"""Observability: cycle attribution, histograms, traces, perf gates.

This package layers *passive* measurement over the simulator:

* :mod:`repro.obs.profiler` — scoped-span cycle attribution: every
  simulated cycle lands in exactly one named phase (execute,
  log-append, log-drain, commit-persist, wpq-stall, backoff,
  forced-lazy, abort, recovery), plus streaming histograms of
  per-transaction latency, commit cost, log-record size and WPQ
  occupancy;
* :mod:`repro.obs.histogram` — the log-scaled, fixed-memory,
  mergeable histogram those distributions are stored in;
* :mod:`repro.obs.trace` — Chrome/Perfetto ``trace_event`` JSON and
  JSONL export of :class:`~repro.core.tracing.Tracer` streams,
  including request-scoped async spans and cross-shard flow arrows;
* :mod:`repro.obs.context` — the :class:`~repro.obs.context.TraceContext`
  identity that request-scoped spans carry end to end;
* :mod:`repro.obs.telemetry` — fixed-width simulated-cycle windows of
  throughput, latency quantiles, queue depth and shed/abort rates;
* :mod:`repro.obs.steady` — warm-up trimming, steady-state detection
  and throughput-vs-latency knee finding over those windows;
* :mod:`repro.obs.bench` — machine-readable ``BENCH_*.json`` perf
  artifacts and the ``bench --check`` regression gate;
* :mod:`repro.obs.cli` — the ``python -m repro obs`` / ``bench``
  front ends.

Everything here observes and never steers: attaching a profiler or a
tracer must leave every :class:`~repro.common.stats.SimStats` counter
and the machine clock bit-identical (the CI passivity gate proves it).

Set ``REPRO_OBS=1`` in the environment to auto-attach a tracer and a
profiler to every :class:`~repro.core.machine.Machine` at construction.
"""

from __future__ import annotations

import os

from repro.obs.context import REQUEST_EVENT_KINDS, TraceContext
from repro.obs.histogram import LogHistogram
from repro.obs.profiler import PHASES, CycleProfiler
from repro.obs.steady import knee_index, steady_summary, steady_window_range
from repro.obs.telemetry import TelemetryWindows, merge_telemetry

#: Environment variable that switches default-on observability.
OBS_ENV_VAR = "REPRO_OBS"


def obs_env_enabled() -> bool:
    """Whether ``REPRO_OBS`` asks for default-on observability."""
    return os.environ.get(OBS_ENV_VAR, "") not in ("", "0", "false", "no")


def attach(machine, *, capacity: int = 10_000) -> None:
    """Attach a fresh tracer and profiler to *machine* (idempotent)."""
    from repro.core.tracing import Tracer

    if machine.tracer is None:
        machine.tracer = Tracer(capacity=capacity)
    if machine.profiler is None:
        profiler = CycleProfiler()
        profiler.bind(machine.now)
        machine.profiler = profiler


__all__ = [
    "LogHistogram",
    "CycleProfiler",
    "PHASES",
    "OBS_ENV_VAR",
    "REQUEST_EVENT_KINDS",
    "TraceContext",
    "TelemetryWindows",
    "merge_telemetry",
    "knee_index",
    "steady_summary",
    "steady_window_range",
    "obs_env_enabled",
    "attach",
]
