"""Chrome/Perfetto ``trace_event`` and JSONL export of machine traces.

The :class:`~repro.core.tracing.Tracer` ring holds structured events
with cycle timestamps; this module turns one tracer (single core) or
many (a :class:`~repro.multicore.system.MultiCoreSystem`) into the
Chrome ``trace_event`` JSON format, so a full run opens directly in
``ui.perfetto.dev`` (or ``chrome://tracing``):

* each core is one track (``tid`` = core id) under one process;
* a transaction is a *complete* ``"X"`` slice from its ``tx_begin`` to
  its ``commit`` / ``abort`` / ``conflict_abort``, so commit cost and
  retry storms are visible as slice widths;
* log drains, forced lazy persists, signature hits, txid reclaims,
  context switches and crashes are *instant* ``"i"`` marks on the
  owning core's track;
* every ``commit`` also feeds a per-core ``deferred lazy lines``
  counter track (``"C"``), the visual form of Section III-C's deferral.

Cycles map 1:1 to microseconds (``ts`` is in µs in the trace_event
spec); a "1 ms" slice in the UI is simply a 1000-cycle transaction.

The JSONL form is one :meth:`TraceEvent.to_dict` object per line — the
stable machine-readable stream downstream tooling consumes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.core.tracing import TraceEvent, Tracer

#: Event kinds that close the currently open transaction slice.
_TX_CLOSERS = ("commit", "abort", "conflict_abort")

#: trace_event phase types this exporter emits: complete slices,
#: instants, counters, metadata, async begin/end (request spans) and
#: flow start/finish (cross-shard PREPARE/DECIDE arrows).
_PHASES = ("X", "i", "C", "M", "b", "e", "s", "f")

#: Request-span kinds that open/close an async slice and the flow-arrow
#: endpoint pairs (see :data:`repro.obs.context.REQUEST_EVENT_KINDS`).
_ASYNC_OPENERS = {
    "req_begin": ("request", "req_ack", "req_shed"),
    "batch_begin": ("batch", "batch_end", None),
    "gtx_begin": ("gtx", "gtx_end", None),
}
_FLOW_PAIRS = {
    "prepare_send": ("PREPARE", "prepare_done"),
    "decide_send": ("DECIDE", "decide_done"),
}

#: Async-closing kinds -> their category, and flow-arrow finishing
#: kinds -> arrow name (both derived from the tables above).
_ASYNC_CLOSERS = {
    kind: cat
    for cat, closer, alt in _ASYNC_OPENERS.values()
    for kind in (closer, alt)
    if kind is not None
}
_FLOW_DONE = {done: name for name, done in _FLOW_PAIRS.values()}


def _slice_name(open_fields: Dict[str, Any], closer: TraceEvent) -> str:
    seq = open_fields.get("tx_seq", closer.fields.get("tx_seq", "?"))
    if closer.kind == "commit":
        return f"tx {seq}"
    return f"tx {seq} ({closer.kind})"


def trace_events(
    tracers: "Sequence[Tracer]", *, pid: int = 1
) -> List[Dict[str, Any]]:
    """Flatten per-core tracer rings into ``trace_event`` dicts.

    Events are emitted per core in ring order; a ``tx_begin`` whose
    closing event fell out of the ring (or never happened — crash)
    yields no slice, only the instants that survived.
    """
    out: List[Dict[str, Any]] = []
    for core_id, tracer in enumerate(tracers):
        out.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": core_id,
                "name": "thread_name",
                "args": {"name": f"core {core_id}"},
            }
        )
        open_begin: Optional[TraceEvent] = None
        for event in tracer.events():
            if event.kind == "tx_begin":
                open_begin = event
                continue
            if event.kind in _TX_CLOSERS:
                start = event.cycle
                args: Dict[str, Any] = dict(event.fields)
                if open_begin is not None:
                    start = open_begin.cycle
                    args.update(open_begin.fields)
                    out.append(
                        {
                            "ph": "X",
                            "pid": pid,
                            "tid": core_id,
                            "ts": start,
                            "dur": max(0, event.cycle - start),
                            "name": _slice_name(
                                open_begin.fields if open_begin else {}, event
                            ),
                            "cat": "transaction",
                            "args": args,
                        }
                    )
                    open_begin = None
                if event.kind == "commit" and "deferred" in event.fields:
                    out.append(
                        {
                            "ph": "C",
                            "pid": pid,
                            "tid": core_id,
                            "ts": event.cycle,
                            "name": f"core {core_id} deferred lazy lines",
                            "args": {"lines": event.fields["deferred"]},
                        }
                    )
                continue
            out.append(
                {
                    "ph": "i",
                    "pid": pid,
                    "tid": core_id,
                    "ts": event.cycle,
                    "name": event.kind,
                    "cat": "machine",
                    "s": "t",  # thread-scoped instant
                    "args": dict(event.fields),
                }
            )
    return out


def request_trace_events(
    tracer: Tracer,
    *,
    pid: int = 2,
    track_names: "Optional[Dict[int, str]]" = None,
) -> List[Dict[str, Any]]:
    """Request-scoped spans from one request tracer (see
    :data:`repro.obs.context.REQUEST_EVENT_KINDS`).

    Each event's ``core_id`` is its *track*: shard ``i`` on ``tid i``,
    the 2PC coordinator on its own track, a single-machine service on
    track 0.  The export stitches:

    * a parent-linked **async span** per request (``ph "b"/"e"``, bound
      by the request's ``flow`` id) from ``req_begin`` on its home
      track to its ``req_ack``/``req_shed``;
    * an async span per group-commit **batch** and per 2PC **gtx**,
      carrying the request ids they serve (the parent link: a child
      span's args name its parent's ``request``/``gtx``);
    * **flow arrows** (``ph "s"/"f"``) for PREPARE and DECIDE crossing
      from the coordinator track to each participant shard track;
    * everything else (admissions, queue depths) as instant marks.

    Timestamps are the emitting node's own simulated clock — tracks are
    per-machine clock domains, like the per-core machine tracks.
    """
    out: List[Dict[str, Any]] = []
    seen_tracks: List[int] = []
    for event in tracer.events():
        if event.core_id not in seen_tracks:
            seen_tracks.append(event.core_id)
    for track in sorted(seen_tracks):
        name = (track_names or {}).get(track, f"shard {track}")
        out.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": track,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    open_async: Dict[int, str] = {}
    for event in tracer.events():
        base = {
            "pid": pid,
            "tid": event.core_id,
            "ts": event.cycle,
        }
        fields = dict(event.fields)
        flow = fields.pop("flow", None)
        if event.kind in _ASYNC_OPENERS:
            cat, _closer, _alt = _ASYNC_OPENERS[event.kind]
            name = _async_name(event.kind, fields)
            open_async[flow] = name
            out.append(
                {
                    **base,
                    "ph": "b",
                    "cat": cat,
                    "id": flow,
                    "name": name,
                    "args": fields,
                }
            )
            continue
        closer = _ASYNC_CLOSERS.get(event.kind)
        if closer is not None and flow in open_async:
            out.append(
                {
                    **base,
                    "ph": "e",
                    "cat": closer,
                    "id": flow,
                    "name": open_async.pop(flow),
                    "args": fields,
                }
            )
            continue
        if event.kind in _FLOW_PAIRS:
            name, _done = _FLOW_PAIRS[event.kind]
            out.append(
                {
                    **base,
                    "ph": "s",
                    "cat": "twopc",
                    "id": flow,
                    "name": name,
                    "args": fields,
                }
            )
            continue
        if event.kind in _FLOW_DONE:
            out.append(
                {
                    **base,
                    "ph": "f",
                    "bp": "e",
                    "cat": "twopc",
                    "id": flow,
                    "name": _FLOW_DONE[event.kind],
                    "args": fields,
                }
            )
            continue
        out.append(
            {
                **base,
                "ph": "i",
                "s": "t",
                "cat": "service",
                "name": event.kind,
                "args": fields,
            }
        )
    return out


def _async_name(kind: str, fields: Dict[str, Any]) -> str:
    if kind == "req_begin":
        return f"req {fields.get('request', '?')} ({fields.get('op', '?')})"
    if kind == "batch_begin":
        return f"batch {fields.get('batch', '?')} s{fields.get('shard', '?')}"
    return f"gtx {fields.get('gtx', '?')}"


def chrome_trace(
    tracers: "Sequence[Tracer]",
    *,
    request_tracer: "Optional[Tracer]" = None,
    request_track_names: "Optional[Dict[int, str]]" = None,
    metadata: "Optional[Dict[str, Any]]" = None,
) -> Dict[str, Any]:
    """The complete Chrome ``trace_event`` JSON object for a run.

    Machine tracks live under ``pid 1``; when a *request_tracer* is
    given, its request/batch/gtx spans and flow arrows become a second
    ``requests`` process (``pid 2``) in the same timeline.
    """
    events = trace_events(tracers)
    if request_tracer is not None:
        events.append(
            {
                "ph": "M",
                "pid": 2,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "requests"},
            }
        )
        events.extend(
            request_trace_events(
                request_tracer, pid=2, track_names=request_track_names
            )
        )
    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = dict(metadata)
    return doc


def write_chrome_trace(
    path: str,
    tracers: "Sequence[Tracer]",
    *,
    request_tracer: "Optional[Tracer]" = None,
    request_track_names: "Optional[Dict[int, str]]" = None,
    metadata: "Optional[Dict[str, Any]]" = None,
) -> Dict[str, Any]:
    """Write the trace JSON to *path*; returns the document."""
    doc = chrome_trace(
        tracers,
        request_tracer=request_tracer,
        request_track_names=request_track_names,
        metadata=metadata,
    )
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Schema-check a trace document; returns the list of problems.

    Pins the contract the exporter promises Perfetto: a ``traceEvents``
    array whose members carry ``ph``/``pid``/``tid``/``name``, with
    timestamps on every timed phase and a non-negative ``dur`` on every
    complete slice.  An empty list means the document is loadable.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("pid", "tid", "name"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        if ph != "M" and not isinstance(ev.get("ts"), int):
            problems.append(f"{where}: missing integer ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"{where}: X slice needs dur >= 0")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            problems.append(f"{where}: counter needs args")
        if ph in ("b", "e", "s", "f") and not isinstance(ev.get("id"), int):
            problems.append(f"{where}: {ph} event needs an integer id")
        if ph == "f" and ev.get("bp") != "e":
            problems.append(f"{where}: flow finish needs bp='e'")
    return problems


# --- JSONL stream ------------------------------------------------------


def to_jsonl(tracer: Tracer, *, include_dropped: bool = True) -> str:
    """The tracer's ring as one JSON object per line.

    The first line is a header object (``{"kind": "header", ...}``)
    carrying the accounting totals, so a consumer knows how much fell
    off the ring before the first data line.
    """
    lines: List[str] = []
    if include_dropped:
        lines.append(
            json.dumps(
                {
                    "kind": "header",
                    "total_emitted": tracer.total_emitted,
                    "dropped": tracer.dropped,
                    "capacity": tracer.capacity,
                },
                sort_keys=True,
            )
        )
    for event in tracer.events():
        lines.append(json.dumps(event.to_dict(), sort_keys=True))
    return "\n".join(lines) + "\n"


def write_jsonl(path: str, tracers: "Iterable[Tracer]") -> None:
    """Concatenate every tracer's JSONL stream into *path*."""
    with open(path, "w") as fh:
        for tracer in tracers:
            fh.write(to_jsonl(tracer))
