"""Chrome/Perfetto ``trace_event`` and JSONL export of machine traces.

The :class:`~repro.core.tracing.Tracer` ring holds structured events
with cycle timestamps; this module turns one tracer (single core) or
many (a :class:`~repro.multicore.system.MultiCoreSystem`) into the
Chrome ``trace_event`` JSON format, so a full run opens directly in
``ui.perfetto.dev`` (or ``chrome://tracing``):

* each core is one track (``tid`` = core id) under one process;
* a transaction is a *complete* ``"X"`` slice from its ``tx_begin`` to
  its ``commit`` / ``abort`` / ``conflict_abort``, so commit cost and
  retry storms are visible as slice widths;
* log drains, forced lazy persists, signature hits, txid reclaims,
  context switches and crashes are *instant* ``"i"`` marks on the
  owning core's track;
* every ``commit`` also feeds a per-core ``deferred lazy lines``
  counter track (``"C"``), the visual form of Section III-C's deferral.

Cycles map 1:1 to microseconds (``ts`` is in µs in the trace_event
spec); a "1 ms" slice in the UI is simply a 1000-cycle transaction.

The JSONL form is one :meth:`TraceEvent.to_dict` object per line — the
stable machine-readable stream downstream tooling consumes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.core.tracing import TraceEvent, Tracer

#: Event kinds that close the currently open transaction slice.
_TX_CLOSERS = ("commit", "abort", "conflict_abort")

#: trace_event phase types this exporter emits.
_PHASES = ("X", "i", "C", "M")


def _slice_name(open_fields: Dict[str, Any], closer: TraceEvent) -> str:
    seq = open_fields.get("tx_seq", closer.fields.get("tx_seq", "?"))
    if closer.kind == "commit":
        return f"tx {seq}"
    return f"tx {seq} ({closer.kind})"


def trace_events(
    tracers: "Sequence[Tracer]", *, pid: int = 1
) -> List[Dict[str, Any]]:
    """Flatten per-core tracer rings into ``trace_event`` dicts.

    Events are emitted per core in ring order; a ``tx_begin`` whose
    closing event fell out of the ring (or never happened — crash)
    yields no slice, only the instants that survived.
    """
    out: List[Dict[str, Any]] = []
    for core_id, tracer in enumerate(tracers):
        out.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": core_id,
                "name": "thread_name",
                "args": {"name": f"core {core_id}"},
            }
        )
        open_begin: Optional[TraceEvent] = None
        for event in tracer.events():
            if event.kind == "tx_begin":
                open_begin = event
                continue
            if event.kind in _TX_CLOSERS:
                start = event.cycle
                args: Dict[str, Any] = dict(event.fields)
                if open_begin is not None:
                    start = open_begin.cycle
                    args.update(open_begin.fields)
                    out.append(
                        {
                            "ph": "X",
                            "pid": pid,
                            "tid": core_id,
                            "ts": start,
                            "dur": max(0, event.cycle - start),
                            "name": _slice_name(
                                open_begin.fields if open_begin else {}, event
                            ),
                            "cat": "transaction",
                            "args": args,
                        }
                    )
                    open_begin = None
                if event.kind == "commit" and "deferred" in event.fields:
                    out.append(
                        {
                            "ph": "C",
                            "pid": pid,
                            "tid": core_id,
                            "ts": event.cycle,
                            "name": f"core {core_id} deferred lazy lines",
                            "args": {"lines": event.fields["deferred"]},
                        }
                    )
                continue
            out.append(
                {
                    "ph": "i",
                    "pid": pid,
                    "tid": core_id,
                    "ts": event.cycle,
                    "name": event.kind,
                    "cat": "machine",
                    "s": "t",  # thread-scoped instant
                    "args": dict(event.fields),
                }
            )
    return out


def chrome_trace(
    tracers: "Sequence[Tracer]",
    *,
    metadata: "Optional[Dict[str, Any]]" = None,
) -> Dict[str, Any]:
    """The complete Chrome ``trace_event`` JSON object for a run."""
    doc: Dict[str, Any] = {
        "traceEvents": trace_events(tracers),
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = dict(metadata)
    return doc


def write_chrome_trace(
    path: str,
    tracers: "Sequence[Tracer]",
    *,
    metadata: "Optional[Dict[str, Any]]" = None,
) -> Dict[str, Any]:
    """Write the trace JSON to *path*; returns the document."""
    doc = chrome_trace(tracers, metadata=metadata)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Schema-check a trace document; returns the list of problems.

    Pins the contract the exporter promises Perfetto: a ``traceEvents``
    array whose members carry ``ph``/``pid``/``tid``/``name``, with
    timestamps on every timed phase and a non-negative ``dur`` on every
    complete slice.  An empty list means the document is loadable.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("pid", "tid", "name"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        if ph != "M" and not isinstance(ev.get("ts"), int):
            problems.append(f"{where}: missing integer ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"{where}: X slice needs dur >= 0")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            problems.append(f"{where}: counter needs args")
    return problems


# --- JSONL stream ------------------------------------------------------


def to_jsonl(tracer: Tracer, *, include_dropped: bool = True) -> str:
    """The tracer's ring as one JSON object per line.

    The first line is a header object (``{"kind": "header", ...}``)
    carrying the accounting totals, so a consumer knows how much fell
    off the ring before the first data line.
    """
    lines: List[str] = []
    if include_dropped:
        lines.append(
            json.dumps(
                {
                    "kind": "header",
                    "total_emitted": tracer.total_emitted,
                    "dropped": tracer.dropped,
                    "capacity": tracer.capacity,
                },
                sort_keys=True,
            )
        )
    for event in tracer.events():
        lines.append(json.dumps(event.to_dict(), sort_keys=True))
    return "\n".join(lines) + "\n"


def write_jsonl(path: str, tracers: "Iterable[Tracer]") -> None:
    """Concatenate every tracer's JSONL stream into *path*."""
    with open(path, "w") as fh:
        for tracer in tracers:
            fh.write(to_jsonl(tracer))
