"""Machine-readable perf artifacts and the bench regression gate.

``python -m repro bench`` sweeps the paper's scheme grid over the YCSB
kernel workloads and writes a ``BENCH_<name>.json`` artifact: one cell
per (workload × scheme) with cycles, PM bytes and the full
:class:`~repro.common.stats.SimStats` dump, plus per-scheme geomeans —
the checked-in artifact is the perf trajectory's baseline.

``bench --check`` re-runs the identical sweep and fails when any
geomean (cycles or PM bytes) drifted *up* beyond the threshold: a perf
regression gate the CI runs on every push.  Improvements pass but are
reported, so the baseline can be re-pinned with ``--update``.

The simulator is deterministic, so the threshold only absorbs
*intentional* model changes; anything above it must either be fixed or
explicitly re-baselined in the same PR that caused it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.harness.metrics import geomean
from repro.parallel import engine
from repro.parallel import tasks as partasks
from repro.workloads import KERNELS

#: Scheme grid of the headline evaluation (Figure 8 order).
BENCH_SCHEMES = ("FG", "FG+LG", "FG+LZ", "SLPMT", "ATOM", "EDE")

#: Default artifact parameters: large enough to exercise drains, lazy
#: forcing and WPQ pressure, small enough for a per-push CI gate.
DEFAULT_NUM_OPS = 300
DEFAULT_VALUE_BYTES = 256
DEFAULT_SEED = 2023
DEFAULT_THRESHOLD = 0.02

#: Bumped to 2 with the sustained-load release — the schema-breaking
#: release the ``max_retries`` removal schedule was pinned to.  Every
#: ``BENCH_*.json`` artifact regenerates together.
SCHEMA_VERSION = 2

#: The checked-in baseline for the default bench.
DEFAULT_BASELINE = "BENCH_slpmt_ycsb.json"

#: Multi-core contention grid defaults: the FG baseline against the
#: full design, over core counts and key skews that bracket the
#: no-contention and hot-key regimes.
MULTICORE_SCHEMES = ("FG", "SLPMT")
MULTICORE_CORES = (1, 2, 4)
MULTICORE_THETAS = (0.0, 0.9)
DEFAULT_MULTICORE_OPS = 100
DEFAULT_MULTICORE_KEYS = 32

#: The checked-in baseline for the contention bench.
DEFAULT_MULTICORE_BASELINE = "BENCH_multicore.json"


def bench_name(name: str) -> str:
    return f"BENCH_{name}.json"


def run_bench(
    *,
    name: str = "slpmt_ycsb",
    workloads: "Sequence[str]" = KERNELS,
    schemes: "Sequence[str]" = BENCH_SCHEMES,
    num_ops: int = DEFAULT_NUM_OPS,
    value_bytes: int = DEFAULT_VALUE_BYTES,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    best_of: int = 1,
    progress: "Optional[engine.ProgressFn]" = None,
) -> Dict[str, Any]:
    """Run the sweep and build the artifact document.

    *jobs* > 1 fans the (workload × scheme) cells out over worker
    processes; the simulated numbers are byte-identical to a serial run
    because every cell is a self-contained deterministic simulation and
    the merge preserves cell order.  Host timing (per-cell ``host_ms``
    and the top-level ``host`` block) is wall-clock and explicitly
    outside the ``--check`` gate.

    *best_of* > 1 repeats the identical sweep and reports the minimum
    wall-clock (all reps by construction produce the same simulated
    numbers; the first rep's are kept).  The in-process run memo is
    cleared before every rep so serial timings measure real simulation
    work, not cache hits — this is the measurement mode the CI perf job
    uses to track the hot-path trajectory.
    """
    keys = [f"{w}/{s}" for w in workloads for s in schemes]
    descriptors = [
        {
            "workload": w,
            "scheme": s,
            "num_ops": num_ops,
            "value_bytes": value_bytes,
            "seed": seed,
        }
        for w in workloads
        for s in schemes
    ]
    best_of = max(1, best_of)
    rep_seconds: List[float] = []
    results: "Optional[List[Any]]" = None
    for _rep in range(best_of):
        if best_of > 1:
            from repro.harness.runner import _cached

            _cached.cache_clear()
        t0 = time.perf_counter()
        rep_results = engine.run_tasks(
            partasks.bench_cell,
            descriptors,
            jobs=jobs,
            labels=keys,
            progress=progress,
        )
        rep_seconds.append(time.perf_counter() - t0)
        if results is None:
            results = rep_results
    host_seconds = min(rep_seconds)
    cells: Dict[str, Any] = dict(zip(keys, results))
    geomeans: Dict[str, Any] = {}
    for scheme in schemes:
        geomeans[scheme] = {
            "cycles": round(
                geomean(cells[f"{w}/{scheme}"]["cycles"] for w in workloads), 1
            ),
            "pm_bytes": round(
                geomean(cells[f"{w}/{scheme}"]["pm_bytes"] for w in workloads), 1
            ),
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "params": {
            "workloads": list(workloads),
            "schemes": list(schemes),
            "num_ops": num_ops,
            "value_bytes": value_bytes,
            "seed": seed,
        },
        "cells": cells,
        "geomean": geomeans,
        # Wall-clock context, never gated: check_bench compares only
        # simulated cycles / pm_bytes, and strip_host() removes these
        # before any byte-identity comparison.
        "host": {
            "seconds": round(host_seconds, 3),
            "cells_per_sec": round(len(keys) / host_seconds, 3)
            if host_seconds > 0
            else 0.0,
            "jobs": jobs,
            "best_of": best_of,
            "rep_seconds": [round(s, 3) for s in rep_seconds],
        },
    }


def run_multicore_bench(
    *,
    name: str = "multicore",
    workloads: "Sequence[str]" = ("hashtable",),
    schemes: "Sequence[str]" = MULTICORE_SCHEMES,
    cores: "Sequence[int]" = MULTICORE_CORES,
    thetas: "Sequence[float]" = MULTICORE_THETAS,
    ops_per_core: int = DEFAULT_MULTICORE_OPS,
    num_keys: int = DEFAULT_MULTICORE_KEYS,
    value_bytes: int = DEFAULT_VALUE_BYTES,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    progress: "Optional[engine.ProgressFn]" = None,
) -> Dict[str, Any]:
    """Run the contention sweep and build the artifact document.

    Cells are keyed ``workload/scheme/cN/tθ`` — one shared-key
    contention run each (see
    :func:`repro.harness.runner.run_contention`), deterministic from
    ``(workload, scheme, cores, θ, seed)``, so the stripped document is
    byte-identical between serial and ``--jobs N`` sweeps.  Geomeans
    aggregate per scheme over every (workload × cores × θ) cell; the
    contention counters (conflicts, aborts) ride along in each cell for
    the reproducibility check but are not gated.
    """
    grid = [
        (w, s, c, t)
        for w in workloads
        for s in schemes
        for c in cores
        for t in thetas
    ]
    keys = [f"{w}/{s}/c{c}/t{t:g}" for w, s, c, t in grid]
    descriptors = [
        {
            "workload": w,
            "scheme": s,
            "cores": c,
            "theta": t,
            "ops_per_core": ops_per_core,
            "num_keys": num_keys,
            "value_bytes": value_bytes,
            "seed": seed,
        }
        for w, s, c, t in grid
    ]
    t0 = time.perf_counter()
    results = engine.run_tasks(
        partasks.multicore_bench_cell,
        descriptors,
        jobs=jobs,
        labels=keys,
        progress=progress,
    )
    host_seconds = time.perf_counter() - t0
    cells: Dict[str, Any] = dict(zip(keys, results))
    geomeans: Dict[str, Any] = {}
    for scheme in schemes:
        mine = [
            key
            for key, (w, s, c, t) in zip(keys, grid)
            if s == scheme
        ]
        geomeans[scheme] = {
            "cycles": round(geomean(cells[k]["cycles"] for k in mine), 1),
            "pm_bytes": round(geomean(cells[k]["pm_bytes"] for k in mine), 1),
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "params": {
            "workloads": list(workloads),
            "schemes": list(schemes),
            "cores": list(cores),
            "thetas": list(thetas),
            "ops_per_core": ops_per_core,
            "num_keys": num_keys,
            "value_bytes": value_bytes,
            "seed": seed,
        },
        "cells": cells,
        "geomean": geomeans,
        "host": {
            "seconds": round(host_seconds, 3),
            "cells_per_sec": round(len(keys) / host_seconds, 3)
            if host_seconds > 0
            else 0.0,
            "jobs": jobs,
        },
    }


#: ``bench --model`` default prediction grid: two orders of magnitude
#: denser than the training grid (120 op counts × 8 value sizes × the
#: 24 workload/scheme pairs = 23 040 cells vs 504 training cells) —
#: the campaign scale the simulator cannot sweep per push.
MODEL_OPS_GRID = tuple(range(25, 3001, 25))
MODEL_VALUE_BYTES_GRID = (16, 32, 64, 128, 256, 512, 1024, 2048)
#: Simulator spot-checks per ``bench --model`` run (seeded sample of
#: interpolation cells, each gated against ``--max-error``).
DEFAULT_SPOT_CHECKS = 6
#: Spot-checked cells stay at or below this op count so the audit costs
#: seconds, not the campaign the model exists to avoid.
SPOT_CHECK_OPS_CAP = 600

MODEL_BENCH_KIND = "model-bench"


def run_model_bench(
    *,
    name: str = "model",
    model_path: "Optional[str]" = None,
    workloads: "Sequence[str]" = KERNELS,
    schemes: "Sequence[str]" = BENCH_SCHEMES,
    ops_grid: "Sequence[int]" = MODEL_OPS_GRID,
    value_bytes_grid: "Sequence[int]" = MODEL_VALUE_BYTES_GRID,
    seed: int = DEFAULT_SEED,
    spot_checks: int = DEFAULT_SPOT_CHECKS,
    max_error: "Optional[float]" = None,
    jobs: int = 1,
    progress: "Optional[engine.ProgressFn]" = None,
) -> Dict[str, Any]:
    """Predict a campaign-scale grid from the fitted cost model, then
    audit a seeded sample of cells against the real simulator.

    The document combines both tiers: every grid cell's predicted
    cycles / PM bytes (cells outside the training range flagged
    ``extrapolated``), plus ``spot_check`` — fresh simulator runs of a
    deterministic hash-ranked sample of interpolation cells, each
    scored by relative error and gated against *max_error*.  One
    extrapolated cell is probed informationally (reported, never
    gated).  ``doc["spot_check"]["ok"]`` is the verdict.

    Everything except ``host`` is deterministic in (model artifact,
    grid, seed): prediction is fixed-order arithmetic and the sample is
    hash-ranked, so serial and ``--jobs N`` documents are byte-identical
    modulo :func:`strip_host`.
    """
    from repro.model.features import CellSpec
    from repro.model.fit import (
        DEFAULT_MAX_ERROR,
        DEFAULT_MODEL_PATH,
        _mix64,
        geomean_error,
    )
    from repro.model.predict import load_model

    model_path = model_path or DEFAULT_MODEL_PATH
    max_error = DEFAULT_MAX_ERROR if max_error is None else max_error
    model = load_model(model_path)

    t0 = time.perf_counter()
    specs = [
        CellSpec(w, s, ops, vb)
        for w in workloads
        for s in schemes
        for ops in ops_grid
        for vb in value_bytes_grid
    ]
    cells: Dict[str, Any] = {}
    scheme_cycles: Dict[str, List[float]] = {s: [] for s in schemes}
    scheme_pm: Dict[str, List[float]] = {s: [] for s in schemes}
    extrapolated_count = 0
    for spec in specs:
        predicted = model.predict_cell(spec)
        cells[spec.key] = {
            "cycles": round(predicted["cycles"], 3),
            "pm_bytes": round(predicted["pm_bytes"], 3),
            "extrapolated": predicted["extrapolated"],
        }
        extrapolated_count += predicted["extrapolated"]
        scheme_cycles[spec.scheme].append(predicted["cycles"])
        scheme_pm[spec.scheme].append(predicted["pm_bytes"])
    model_seconds = time.perf_counter() - t0
    # Deep-extrapolation cells can clamp every phase to zero; keep the
    # per-scheme geomean defined by aggregating positive predictions
    # only (the count of excluded cells is visible via the cells block).
    geomeans = {
        scheme: {
            "cycles": round(
                geomean(v for v in scheme_cycles[scheme] if v > 0), 1
            ),
            "pm_bytes": round(
                geomean(v for v in scheme_pm[scheme] if v > 0), 1
            ),
        }
        for scheme in schemes
    }

    # Seeded hash-ranked spot-check sample: interpolation cells only
    # (the model is contractually accurate there), capped in op count,
    # ordering independent of dict/iteration order.
    interior = [
        spec
        for spec in specs
        if not cells[spec.key]["extrapolated"]
        and spec.num_ops <= SPOT_CHECK_OPS_CAP
    ]
    interior.sort(key=lambda spec: spec.key)
    ranked = sorted(
        (_mix64(index + 1, seed), spec) for index, spec in enumerate(interior)
    )
    picks = [spec for _, spec in ranked[: max(0, spot_checks)]]
    exterior = [
        spec
        for spec in specs
        if cells[spec.key]["extrapolated"] and spec.num_ops <= SPOT_CHECK_OPS_CAP
    ]
    exterior.sort(key=lambda spec: spec.key)
    probe = None
    if exterior:
        probe = min(
            (_mix64(index + 1, seed), spec)
            for index, spec in enumerate(exterior)
        )[1]

    audit_specs = picks + ([probe] if probe is not None else [])
    t1 = time.perf_counter()
    simulated = engine.run_tasks(
        partasks.model_train_cell,
        [
            {
                "workload": spec.workload,
                "scheme": spec.scheme,
                "num_ops": spec.num_ops,
                "value_bytes": spec.value_bytes,
                "seed": seed,
            }
            for spec in audit_specs
        ],
        jobs=jobs,
        labels=[spec.key for spec in audit_specs],
        progress=progress,
    )
    spot_seconds = time.perf_counter() - t1

    spot_cells: Dict[str, Any] = {}
    errors: List[float] = []
    for spec, sim in zip(picks, simulated):
        actual = sim["cycles"]
        predicted = cells[spec.key]["cycles"]
        rel = abs(predicted - actual) / actual if actual else 0.0
        spot_cells[spec.key] = {
            "actual_cycles": actual,
            "predicted_cycles": predicted,
            "rel_error": round(rel, 6),
        }
        errors.append(rel)
    spot_check: Dict[str, Any] = {
        "cells": spot_cells,
        "geomean_rel_error": round(geomean_error(errors), 6),
        "max_rel_error": round(max(errors), 6) if errors else 0.0,
        "max_error": max_error,
        "ok": (max(errors) if errors else 0.0) <= max_error,
    }
    if probe is not None:
        sim = simulated[-1]
        actual = sim["cycles"]
        predicted = cells[probe.key]["cycles"]
        spot_check["extrapolated_probe"] = {
            "cell": probe.key,
            "actual_cycles": actual,
            "predicted_cycles": predicted,
            "rel_error": round(
                abs(predicted - actual) / actual if actual else 0.0, 6
            ),
        }

    return {
        "schema_version": SCHEMA_VERSION,
        "kind": MODEL_BENCH_KIND,
        "name": name,
        "params": {
            "workloads": list(workloads),
            "schemes": list(schemes),
            "ops_grid": list(ops_grid),
            "value_bytes_grid": list(value_bytes_grid),
            "seed": seed,
            "spot_checks": spot_checks,
            "max_error": max_error,
            "model_path": model_path,
        },
        # Provenance of the predictions: the artifact's own fit params
        # and held-out score (deterministic — included in strip_host
        # comparisons, unlike host timing).
        "model": {
            "params": model.doc["params"],
            "train_range": model.doc["train_range"],
            "holdout_geomean_rel_error": model.doc["validation"][
                "geomean_rel_error"
            ],
        },
        "cells": cells,
        "extrapolated_cells": extrapolated_count,
        "geomean": geomeans,
        "spot_check": spot_check,
        "host": {
            "model_seconds": round(model_seconds, 3),
            "spot_check_seconds": round(spot_seconds, 3),
            "cells_per_sec": round(len(specs) / model_seconds, 1)
            if model_seconds > 0
            else 0.0,
            "jobs": jobs,
        },
    }


def format_model_bench(doc: Dict[str, Any]) -> str:
    """Human summary of a ``bench --model`` document."""
    spot = doc["spot_check"]
    lines = [
        f"model bench: {len(doc['cells'])} cells predicted in "
        f"{doc['host']['model_seconds']:.3f}s "
        f"({doc['extrapolated_cells']} extrapolated, flagged)",
    ]
    for scheme, geo in doc["geomean"].items():
        lines.append(
            f"{scheme:<8} geomean cycles={geo['cycles']:>14,.0f}  "
            f"pm_bytes={geo['pm_bytes']:>12,.0f}"
        )
    lines.append(
        f"spot-check ({len(spot['cells'])} simulated cells, gate "
        f"≤{spot['max_error'] * 100:.1f}%): "
        + ("PASS" if spot["ok"] else "FAIL")
    )
    for key, cell in spot["cells"].items():
        lines.append(
            f"  {key:<34} rel error {cell['rel_error'] * 100:6.3f}%"
        )
    probe = spot.get("extrapolated_probe")
    if probe:
        lines.append(
            f"  {probe['cell']:<34} rel error "
            f"{probe['rel_error'] * 100:6.3f}% (extrapolated, not gated)"
        )
    return "\n".join(lines)


#: Keys that carry host wall-clock (never simulated numbers) at any
#: nesting depth of any artifact — bench cells (``host_ms``), bench and
#: model-bench documents and the cost model's training cells (``host``).
_HOST_KEYS = frozenset({"host", "host_ms"})


def strip_host(doc: Dict[str, Any]) -> Dict[str, Any]:
    """A deep copy of *doc* without any host-timing field, recursively.

    This is the comparison form for every determinism / equivalence
    check: two runs of the same sweep must be byte-identical *modulo*
    wall-clock.  Host timing lives only under the :data:`_HOST_KEYS`
    names, at any depth — top-level ``host`` blocks, per-cell
    ``host_ms``, and the cost model's per-training-cell ``host_ms`` —
    so one recursive sweep covers ``BENCH_*.json``,
    ``cost_model.json`` and ``bench --model`` documents alike.
    """

    def _strip(node: Any) -> Any:
        if isinstance(node, dict):
            return {
                key: _strip(value)
                for key, value in node.items()
                if key not in _HOST_KEYS
            }
        if isinstance(node, list):
            return [_strip(value) for value in node]
        return node

    return _strip(doc)


def write_bench(path: str, doc: Dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bench schema {doc.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    return doc


@dataclass(frozen=True)
class Drift:
    """One metric's movement against the baseline."""

    where: str  # "geomean/SLPMT" or "cells/hashtable/SLPMT"
    metric: str  # "cycles" | "pm_bytes"
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def __str__(self) -> str:
        return (
            f"{self.where} {self.metric}: {self.baseline:,.0f} -> "
            f"{self.current:,.0f} ({(self.ratio - 1.0) * 100.0:+.2f}%)"
        )


@dataclass
class CheckResult:
    """Outcome of one ``bench --check`` comparison."""

    regressions: List[Drift]
    improvements: List[Drift]

    @property
    def ok(self) -> bool:
        return not self.regressions


def check_bench(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> CheckResult:
    """Compare *current* against *baseline*.

    A **regression** is a geomean or per-cell metric that grew beyond
    ``baseline * (1 + threshold)``; a metric that *shrank* past the
    same margin is reported as an improvement (gate still passes — but
    re-pin the baseline so the win is locked in).
    """
    if current["params"] != baseline["params"]:
        raise ValueError(
            "bench parameters differ from the baseline "
            f"({current['params']} vs {baseline['params']}); "
            "regenerate with matching parameters or --update the baseline"
        )
    regressions: List[Drift] = []
    improvements: List[Drift] = []

    def compare(where: str, metric: str, base_val: float, cur_val: float) -> None:
        drift = Drift(where, metric, base_val, cur_val)
        if cur_val > base_val * (1.0 + threshold):
            regressions.append(drift)
        elif cur_val < base_val * (1.0 - threshold):
            improvements.append(drift)

    for scheme, base_geo in baseline["geomean"].items():
        cur_geo = current["geomean"].get(scheme)
        if cur_geo is None:
            continue
        for metric in ("cycles", "pm_bytes"):
            compare(f"geomean/{scheme}", metric, base_geo[metric], cur_geo[metric])
    for cell, base_cell in baseline["cells"].items():
        cur_cell = current["cells"].get(cell)
        if cur_cell is None:
            continue
        for metric in ("cycles", "pm_bytes"):
            compare(f"cells/{cell}", metric, base_cell[metric], cur_cell[metric])
    return CheckResult(regressions=regressions, improvements=improvements)


def format_check(result: CheckResult, *, threshold: float) -> str:
    lines = [
        f"bench check (threshold ±{threshold * 100.0:.1f}%): "
        + ("PASS" if result.ok else "FAIL"),
    ]
    for drift in result.regressions:
        lines.append(f"  REGRESSION {drift}")
    for drift in result.improvements:
        lines.append(f"  improvement {drift} (consider --update)")
    if not result.regressions and not result.improvements:
        lines.append("  all metrics within threshold")
    return "\n".join(lines)
