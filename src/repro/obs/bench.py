"""Machine-readable perf artifacts and the bench regression gate.

``python -m repro bench`` sweeps the paper's scheme grid over the YCSB
kernel workloads and writes a ``BENCH_<name>.json`` artifact: one cell
per (workload × scheme) with cycles, PM bytes and the full
:class:`~repro.common.stats.SimStats` dump, plus per-scheme geomeans —
the checked-in artifact is the perf trajectory's baseline.

``bench --check`` re-runs the identical sweep and fails when any
geomean (cycles or PM bytes) drifted *up* beyond the threshold: a perf
regression gate the CI runs on every push.  Improvements pass but are
reported, so the baseline can be re-pinned with ``--update``.

The simulator is deterministic, so the threshold only absorbs
*intentional* model changes; anything above it must either be fixed or
explicitly re-baselined in the same PR that caused it.
"""

from __future__ import annotations

import copy
import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.harness.metrics import geomean
from repro.parallel import engine
from repro.parallel import tasks as partasks
from repro.workloads import KERNELS

#: Scheme grid of the headline evaluation (Figure 8 order).
BENCH_SCHEMES = ("FG", "FG+LG", "FG+LZ", "SLPMT", "ATOM", "EDE")

#: Default artifact parameters: large enough to exercise drains, lazy
#: forcing and WPQ pressure, small enough for a per-push CI gate.
DEFAULT_NUM_OPS = 300
DEFAULT_VALUE_BYTES = 256
DEFAULT_SEED = 2023
DEFAULT_THRESHOLD = 0.02

SCHEMA_VERSION = 1

#: The checked-in baseline for the default bench.
DEFAULT_BASELINE = "BENCH_slpmt_ycsb.json"

#: Multi-core contention grid defaults: the FG baseline against the
#: full design, over core counts and key skews that bracket the
#: no-contention and hot-key regimes.
MULTICORE_SCHEMES = ("FG", "SLPMT")
MULTICORE_CORES = (1, 2, 4)
MULTICORE_THETAS = (0.0, 0.9)
DEFAULT_MULTICORE_OPS = 100
DEFAULT_MULTICORE_KEYS = 32

#: The checked-in baseline for the contention bench.
DEFAULT_MULTICORE_BASELINE = "BENCH_multicore.json"


def bench_name(name: str) -> str:
    return f"BENCH_{name}.json"


def run_bench(
    *,
    name: str = "slpmt_ycsb",
    workloads: "Sequence[str]" = KERNELS,
    schemes: "Sequence[str]" = BENCH_SCHEMES,
    num_ops: int = DEFAULT_NUM_OPS,
    value_bytes: int = DEFAULT_VALUE_BYTES,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    progress: "Optional[engine.ProgressFn]" = None,
) -> Dict[str, Any]:
    """Run the sweep and build the artifact document.

    *jobs* > 1 fans the (workload × scheme) cells out over worker
    processes; the simulated numbers are byte-identical to a serial run
    because every cell is a self-contained deterministic simulation and
    the merge preserves cell order.  Host timing (per-cell ``host_ms``
    and the top-level ``host`` block) is wall-clock and explicitly
    outside the ``--check`` gate.
    """
    keys = [f"{w}/{s}" for w in workloads for s in schemes]
    descriptors = [
        {
            "workload": w,
            "scheme": s,
            "num_ops": num_ops,
            "value_bytes": value_bytes,
            "seed": seed,
        }
        for w in workloads
        for s in schemes
    ]
    t0 = time.perf_counter()
    results = engine.run_tasks(
        partasks.bench_cell,
        descriptors,
        jobs=jobs,
        labels=keys,
        progress=progress,
    )
    host_seconds = time.perf_counter() - t0
    cells: Dict[str, Any] = dict(zip(keys, results))
    geomeans: Dict[str, Any] = {}
    for scheme in schemes:
        geomeans[scheme] = {
            "cycles": round(
                geomean(cells[f"{w}/{scheme}"]["cycles"] for w in workloads), 1
            ),
            "pm_bytes": round(
                geomean(cells[f"{w}/{scheme}"]["pm_bytes"] for w in workloads), 1
            ),
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "params": {
            "workloads": list(workloads),
            "schemes": list(schemes),
            "num_ops": num_ops,
            "value_bytes": value_bytes,
            "seed": seed,
        },
        "cells": cells,
        "geomean": geomeans,
        # Wall-clock context, never gated: check_bench compares only
        # simulated cycles / pm_bytes, and strip_host() removes these
        # before any byte-identity comparison.
        "host": {
            "seconds": round(host_seconds, 3),
            "cells_per_sec": round(len(keys) / host_seconds, 3)
            if host_seconds > 0
            else 0.0,
            "jobs": jobs,
        },
    }


def run_multicore_bench(
    *,
    name: str = "multicore",
    workloads: "Sequence[str]" = ("hashtable",),
    schemes: "Sequence[str]" = MULTICORE_SCHEMES,
    cores: "Sequence[int]" = MULTICORE_CORES,
    thetas: "Sequence[float]" = MULTICORE_THETAS,
    ops_per_core: int = DEFAULT_MULTICORE_OPS,
    num_keys: int = DEFAULT_MULTICORE_KEYS,
    value_bytes: int = DEFAULT_VALUE_BYTES,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    progress: "Optional[engine.ProgressFn]" = None,
) -> Dict[str, Any]:
    """Run the contention sweep and build the artifact document.

    Cells are keyed ``workload/scheme/cN/tθ`` — one shared-key
    contention run each (see
    :func:`repro.harness.runner.run_contention`), deterministic from
    ``(workload, scheme, cores, θ, seed)``, so the stripped document is
    byte-identical between serial and ``--jobs N`` sweeps.  Geomeans
    aggregate per scheme over every (workload × cores × θ) cell; the
    contention counters (conflicts, aborts) ride along in each cell for
    the reproducibility check but are not gated.
    """
    grid = [
        (w, s, c, t)
        for w in workloads
        for s in schemes
        for c in cores
        for t in thetas
    ]
    keys = [f"{w}/{s}/c{c}/t{t:g}" for w, s, c, t in grid]
    descriptors = [
        {
            "workload": w,
            "scheme": s,
            "cores": c,
            "theta": t,
            "ops_per_core": ops_per_core,
            "num_keys": num_keys,
            "value_bytes": value_bytes,
            "seed": seed,
        }
        for w, s, c, t in grid
    ]
    t0 = time.perf_counter()
    results = engine.run_tasks(
        partasks.multicore_bench_cell,
        descriptors,
        jobs=jobs,
        labels=keys,
        progress=progress,
    )
    host_seconds = time.perf_counter() - t0
    cells: Dict[str, Any] = dict(zip(keys, results))
    geomeans: Dict[str, Any] = {}
    for scheme in schemes:
        mine = [
            key
            for key, (w, s, c, t) in zip(keys, grid)
            if s == scheme
        ]
        geomeans[scheme] = {
            "cycles": round(geomean(cells[k]["cycles"] for k in mine), 1),
            "pm_bytes": round(geomean(cells[k]["pm_bytes"] for k in mine), 1),
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "params": {
            "workloads": list(workloads),
            "schemes": list(schemes),
            "cores": list(cores),
            "thetas": list(thetas),
            "ops_per_core": ops_per_core,
            "num_keys": num_keys,
            "value_bytes": value_bytes,
            "seed": seed,
        },
        "cells": cells,
        "geomean": geomeans,
        "host": {
            "seconds": round(host_seconds, 3),
            "cells_per_sec": round(len(keys) / host_seconds, 3)
            if host_seconds > 0
            else 0.0,
            "jobs": jobs,
        },
    }


def strip_host(doc: Dict[str, Any]) -> Dict[str, Any]:
    """A deep copy of *doc* without any host-timing field.

    This is the comparison form for every determinism / equivalence
    check: two runs of the same sweep must be byte-identical *modulo*
    wall-clock, which lives only in ``host`` and per-cell ``host_ms``.
    """
    out = copy.deepcopy(doc)
    out.pop("host", None)
    for cell in out.get("cells", {}).values():
        if isinstance(cell, dict):
            cell.pop("host_ms", None)
    return out


def write_bench(path: str, doc: Dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bench schema {doc.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    return doc


@dataclass(frozen=True)
class Drift:
    """One metric's movement against the baseline."""

    where: str  # "geomean/SLPMT" or "cells/hashtable/SLPMT"
    metric: str  # "cycles" | "pm_bytes"
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def __str__(self) -> str:
        return (
            f"{self.where} {self.metric}: {self.baseline:,.0f} -> "
            f"{self.current:,.0f} ({(self.ratio - 1.0) * 100.0:+.2f}%)"
        )


@dataclass
class CheckResult:
    """Outcome of one ``bench --check`` comparison."""

    regressions: List[Drift]
    improvements: List[Drift]

    @property
    def ok(self) -> bool:
        return not self.regressions


def check_bench(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> CheckResult:
    """Compare *current* against *baseline*.

    A **regression** is a geomean or per-cell metric that grew beyond
    ``baseline * (1 + threshold)``; a metric that *shrank* past the
    same margin is reported as an improvement (gate still passes — but
    re-pin the baseline so the win is locked in).
    """
    if current["params"] != baseline["params"]:
        raise ValueError(
            "bench parameters differ from the baseline "
            f"({current['params']} vs {baseline['params']}); "
            "regenerate with matching parameters or --update the baseline"
        )
    regressions: List[Drift] = []
    improvements: List[Drift] = []

    def compare(where: str, metric: str, base_val: float, cur_val: float) -> None:
        drift = Drift(where, metric, base_val, cur_val)
        if cur_val > base_val * (1.0 + threshold):
            regressions.append(drift)
        elif cur_val < base_val * (1.0 - threshold):
            improvements.append(drift)

    for scheme, base_geo in baseline["geomean"].items():
        cur_geo = current["geomean"].get(scheme)
        if cur_geo is None:
            continue
        for metric in ("cycles", "pm_bytes"):
            compare(f"geomean/{scheme}", metric, base_geo[metric], cur_geo[metric])
    for cell, base_cell in baseline["cells"].items():
        cur_cell = current["cells"].get(cell)
        if cur_cell is None:
            continue
        for metric in ("cycles", "pm_bytes"):
            compare(f"cells/{cell}", metric, base_cell[metric], cur_cell[metric])
    return CheckResult(regressions=regressions, improvements=improvements)


def format_check(result: CheckResult, *, threshold: float) -> str:
    lines = [
        f"bench check (threshold ±{threshold * 100.0:.1f}%): "
        + ("PASS" if result.ok else "FAIL"),
    ]
    for drift in result.regressions:
        lines.append(f"  REGRESSION {drift}")
    for drift in result.improvements:
        lines.append(f"  improvement {drift} (consider --update)")
    if not result.regressions and not result.improvements:
        lines.append("  all metrics within threshold")
    return "\n".join(lines)
