"""Observed runs: single-core and multicore drivers with obs attached.

Thin orchestration used by ``python -m repro obs`` and the obs tests:
run a workload with a tracer + profiler attached, hand back everything
a report or export needs.  The simulations themselves are the same
harness/multicore code paths every benchmark uses — observability is
attached, never special-cased.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict

from repro.core.tracing import Tracer
from repro.harness.runner import RunResult, run_workload
from repro.multicore.system import CONFLICT_BACKOFF_BASE, MultiCoreSystem
from repro.workloads.base import value_words_for_key
from repro.obs.profiler import CycleProfiler
from repro.runtime.hints import MANUAL
from repro.workloads.hashtable import HashTable


@dataclass
class ObservedRun:
    """One single-core run plus its observability artifacts."""

    result: RunResult
    tracer: Tracer
    profiler: CycleProfiler

    def to_doc(self) -> Dict[str, Any]:
        """The ``obs stats --json`` document (diffable run snapshot)."""
        return {
            "workload": self.result.workload,
            "scheme": self.result.scheme,
            "policy": self.result.policy,
            "num_ops": self.result.num_ops,
            "value_bytes": self.result.value_bytes,
            "cycles": self.result.cycles,
            "pm_bytes": self.result.pm_bytes,
            "stats": json.loads(self.result.stats.to_json()),
            "profile": self.profiler.to_dict(),
        }


def observed_run(
    workload: str,
    scheme,
    *,
    num_ops: int = 1000,
    value_bytes: int = 256,
    seed: int = 2023,
    policy=MANUAL,
    capacity: int = 100_000,
) -> ObservedRun:
    """Run one (workload, scheme) simulation with obs attached."""
    from repro.core.schemes import scheme_by_name

    if isinstance(scheme, str):
        scheme = scheme_by_name(scheme)
    tracer = Tracer(capacity=capacity)
    profiler = CycleProfiler()
    result = run_workload(
        workload,
        scheme,
        policy=policy,
        num_ops=num_ops,
        value_bytes=value_bytes,
        seed=seed,
        tracer=tracer,
        profiler=profiler,
    )
    return ObservedRun(result=result, tracer=tracer, profiler=profiler)


def observed_multicore_ycsb(
    *,
    num_cores: int = 4,
    scheme: str = "SLPMT",
    ops_per_core: int = 50,
    value_bytes: int = 64,
    seed: int = 2023,
    capacity: int = 50_000,
) -> MultiCoreSystem:
    """A multicore YCSB-load run with full observability attached.

    Every core inserts its own key range into one shared durable hash
    table under the deterministic interleaving — conflicts on shared
    headers, lazy forcing across cores and per-core commit cadence all
    show up in the exported trace.  Returns the finalized system.
    """
    from repro.core.schemes import scheme_by_name

    system = MultiCoreSystem(num_cores, scheme_by_name(scheme), seed=seed)
    system.attach_observability(capacity=capacity)
    table = HashTable(system.runtimes[0], value_bytes=value_bytes)
    handles = [table] + [
        table.clone_for(rt) for rt in system.runtimes[1:]
    ]

    def worker_for(handle, base: int):
        def worker(rt) -> None:
            for i in range(ops_per_core):
                key = base + i
                value = value_words_for_key(key, handle.value_words)
                handle.before_transaction(key)
                rt.run_with_retries(
                    lambda: handle._insert(key, value),
                    retries=255,
                    backoff_base=CONFLICT_BACKOFF_BASE,
                )
                handle.expected[key] = value

        return worker

    workers = [
        worker_for(handle, 1_000_000 * (core_id + 1))
        for core_id, handle in enumerate(handles)
    ]
    system.run(workers)
    system.finalize_all()
    return system
