"""Log-scaled streaming histograms: fixed memory, mergeable, quantiled.

The distributions the observability layer cares about — transaction
latency, commit cost, log-record size, WPQ occupancy — are heavy-tailed
and arrive one sample at a time from millions of events, so storing raw
samples is out.  :class:`LogHistogram` is an HDR-style bucketed counter:

* buckets are geometric — each power of two is split into
  ``sub_buckets`` linear slices — so relative error is bounded by
  ``1/sub_buckets`` at every magnitude;
* bucket indices are computed with *integer* arithmetic
  (``bit_length``), so the same samples always land in the same bucket
  on every platform (no ``log2`` float rounding at bucket edges);
* memory is fixed: a 64-bit value space needs at most
  ``64 * sub_buckets + 1`` buckets regardless of sample count;
* histograms merge by adding counts, so per-core histograms fold into
  a system-wide one without losing quantile accuracy.

Quantiles return the geometric midpoint of the containing bucket,
clamped to the observed min/max, which keeps p50/p95/p99 honest at the
distribution edges.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Tuple


class LogHistogram:
    """Streaming histogram over non-negative integer samples."""

    def __init__(self, sub_buckets: int = 8) -> None:
        if sub_buckets < 1:
            raise ValueError("sub_buckets must be >= 1")
        self.sub_buckets = sub_buckets
        #: Sparse bucket counts: index -> count.  Index 0 holds zeros;
        #: index ``1 + e*sub + slice`` holds values with exponent *e*.
        self._counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0

    # --- recording -----------------------------------------------------

    def _index(self, value: int) -> int:
        if value <= 0:
            return 0
        e = value.bit_length() - 1
        base = 1 << e
        # Linear slice inside the [2^e, 2^(e+1)) octave, integer math.
        slice_ = ((value - base) * self.sub_buckets) // base
        return 1 + e * self.sub_buckets + slice_

    def record(self, value: int, count: int = 1) -> None:
        """Add *count* samples of *value* (negatives clamp to zero)."""
        value = int(value)
        if value < 0:
            value = 0
        idx = self._index(value)
        self._counts[idx] = self._counts.get(idx, 0) + count
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += count
        self.total += value * count

    # --- bucket geometry ----------------------------------------------

    def _bounds(self, idx: int) -> Tuple[int, int]:
        """Inclusive-lower / exclusive-upper value bounds of a bucket."""
        if idx == 0:
            return (0, 1)
        e, slice_ = divmod(idx - 1, self.sub_buckets)
        base = 1 << e
        lo = base + (slice_ * base) // self.sub_buckets
        hi = base + ((slice_ + 1) * base) // self.sub_buckets
        return (lo, max(hi, lo + 1))

    # --- queries -------------------------------------------------------

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        """Value at quantile *q* in [0, 1] (bucket midpoint, clamped)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0
        rank = q * self.count
        seen = 0
        for idx in sorted(self._counts):
            seen += self._counts[idx]
            if seen >= rank:
                lo, hi = self._bounds(idx)
                mid = math.isqrt(lo * (hi - 1)) if lo > 0 else 0
                return max(self.min, min(self.max, mid))
        return self.max

    @property
    def p50(self) -> int:
        return self.quantile(0.50)

    @property
    def p95(self) -> int:
        return self.quantile(0.95)

    @property
    def p99(self) -> int:
        return self.quantile(0.99)

    def buckets(self) -> List[Tuple[int, int, int]]:
        """Non-empty ``(lower, upper, count)`` rows, ascending."""
        rows = []
        for idx in sorted(self._counts):
            lo, hi = self._bounds(idx)
            rows.append((lo, hi, self._counts[idx]))
        return rows

    # --- merge / serialisation ----------------------------------------

    def merge(self, other: "LogHistogram") -> None:
        """Fold *other*'s samples into this histogram (same geometry)."""
        if other.sub_buckets != self.sub_buckets:
            raise ValueError(
                f"cannot merge histograms with sub_buckets "
                f"{other.sub_buckets} into {self.sub_buckets}"
            )
        if other.count == 0:
            return
        for idx, count in other._counts.items():
            self._counts[idx] = self._counts.get(idx, 0) + count
        if self.count == 0:
            self.min, self.max = other.min, other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sub_buckets": self.sub_buckets,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "counts": {str(k): v for k, v in sorted(self._counts.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LogHistogram":
        hist = cls(sub_buckets=int(data["sub_buckets"]))
        hist.count = int(data["count"])
        hist.total = int(data["total"])
        hist.min = int(data["min"])
        hist.max = int(data["max"])
        hist._counts = {int(k): int(v) for k, v in data["counts"].items()}
        return hist

    def summary(self) -> Dict[str, float]:
        """The row every report prints for one distribution."""
        return {
            "count": self.count,
            "mean": round(self.mean(), 2),
            "min": self.min,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return (
            f"LogHistogram(count={self.count}, min={self.min}, "
            f"p50={self.p50}, p99={self.p99}, max={self.max})"
        )


def merge_all(histograms: "Iterable[LogHistogram]") -> LogHistogram:
    """Merge any number of same-geometry histograms into a fresh one."""
    out: "LogHistogram | None" = None
    for hist in histograms:
        if out is None:
            out = LogHistogram(sub_buckets=hist.sub_buckets)
        out.merge(hist)
    return out if out is not None else LogHistogram()
