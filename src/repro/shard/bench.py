"""The cross-shard 2PC bench grid and its artifact.

``python -m repro bench --twopc`` sweeps the sharded deployment over
(workload × scheme × transaction span) at a fixed shard count and
writes ``BENCH_twopc.json``: per-cell simulated cycles, PM bytes, the
2PC phase buckets (``prepare-persist`` / ``decide-persist``) and the
cross-shard commit counters, plus the protocol headline —
**amortization**, the drop in decision-persist cycles per committed
cross-shard key write between the narrowest and widest transaction
span.  A wider transaction touches more keys (and so more shards) per
global commit, but still pays one coordinator decision and one
decision/seal pair per participant — the per-write protocol overhead
falls as the span grows, which is exactly the selective-logging
argument applied to protocol records.

The grid runs a txn-heavy mix so cross-shard traffic dominates;
``txn_keys`` is the span axis (a ``txn`` draws 2..span distinct keys).

``cycles``/``pm_bytes`` cells and per-scheme geomeans follow the same
shape as the other benches, so :func:`repro.obs.bench.check_bench`
gates this artifact unchanged (±2% drift on every cell and geomean).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Sequence

from repro.harness.metrics import geomean
from repro.parallel import engine
from repro.parallel import tasks as partasks

#: 2PC bench grid: the FG baseline against the full design, over a
#: hashtable (O(1) paths) and an rbtree (pointer-chasing, rebalancing).
TWOPC_WORKLOADS = ("hashtable", "rbtree")
TWOPC_SCHEMES = ("FG", "SLPMT")

#: Transaction-span axis (``txn_keys``): narrow spans barely cross
#: shards; wide spans touch most of the deployment per global commit.
#: The amortization headline compares the first against the last.
TWOPC_SPANS = (2, 4, 8)

#: Request mix for the grid: txn-heavy so the cross-shard protocol is
#: the dominant write path and the span axis has signal.
TWOPC_MIX: Dict[str, float] = {"put": 0.30, "get": 0.10, "scan": 0.05, "txn": 0.55}

DEFAULT_TWOPC_SHARDS = 4
DEFAULT_TWOPC_CLIENTS = 6
DEFAULT_TWOPC_REQUESTS = 25
DEFAULT_TWOPC_VALUE_BYTES = 32
DEFAULT_TWOPC_KEYS = 48
DEFAULT_TWOPC_THETA = 0.6
DEFAULT_TWOPC_ARRIVAL = 800
DEFAULT_TWOPC_BATCH = 8
DEFAULT_TWOPC_MAX_WAIT = 4000
DEFAULT_TWOPC_SEED = 2023

#: The checked-in baseline for the 2PC bench.
DEFAULT_TWOPC_BASELINE = "BENCH_twopc.json"

#: Bumped to 2 with the sustained-load release (all BENCH_*.json
#: artifacts regenerate together; see repro.obs.bench).
SCHEMA_VERSION = 2


def run_twopc_bench(
    *,
    name: str = "twopc",
    workloads: "Sequence[str]" = TWOPC_WORKLOADS,
    schemes: "Sequence[str]" = TWOPC_SCHEMES,
    spans: "Sequence[int]" = TWOPC_SPANS,
    num_shards: int = DEFAULT_TWOPC_SHARDS,
    num_clients: int = DEFAULT_TWOPC_CLIENTS,
    requests_per_client: int = DEFAULT_TWOPC_REQUESTS,
    value_bytes: int = DEFAULT_TWOPC_VALUE_BYTES,
    num_keys: int = DEFAULT_TWOPC_KEYS,
    theta: float = DEFAULT_TWOPC_THETA,
    arrival_cycles: int = DEFAULT_TWOPC_ARRIVAL,
    batch_size: int = DEFAULT_TWOPC_BATCH,
    max_wait_cycles: int = DEFAULT_TWOPC_MAX_WAIT,
    seed: int = DEFAULT_TWOPC_SEED,
    jobs: int = 1,
    progress: "Optional[engine.ProgressFn]" = None,
) -> Dict[str, Any]:
    """Run the 2PC sweep and build the artifact document.

    Cells are keyed ``workload/scheme/kSPAN``.  Every cell is one
    self-contained deterministic sharded run, so the stripped document
    is byte-identical between serial and ``--jobs N`` sweeps.
    """
    grid = [(w, s, k) for w in workloads for s in schemes for k in spans]
    keys = [f"{w}/{s}/k{k}" for w, s, k in grid]
    descriptors = [
        {
            "workload": w,
            "scheme": s,
            "txn_keys": k,
            "num_shards": num_shards,
            "num_clients": num_clients,
            "requests_per_client": requests_per_client,
            "value_bytes": value_bytes,
            "num_keys": num_keys,
            "theta": theta,
            "arrival_cycles": arrival_cycles,
            "batch_size": batch_size,
            "max_wait_cycles": max_wait_cycles,
            "seed": seed,
        }
        for w, s, k in grid
    ]
    t0 = time.perf_counter()
    results = engine.run_tasks(
        partasks.twopc_bench_cell,
        descriptors,
        jobs=jobs,
        labels=keys,
        progress=progress,
    )
    host_seconds = time.perf_counter() - t0
    cells: Dict[str, Any] = dict(zip(keys, results))
    geomeans: Dict[str, Any] = {}
    for scheme in schemes:
        mine = [key for key, (w, s, k) in zip(keys, grid) if s == scheme]
        geomeans[scheme] = {
            "cycles": round(geomean(cells[k]["cycles"] for k in mine), 1),
            "pm_bytes": round(geomean(cells[k]["pm_bytes"] for k in mine), 1),
        }
    # The protocol headline: per (workload, scheme), the ratio of
    # decision-persist cycles per committed cross-shard key write at
    # the narrowest span over the widest, then the per-scheme geomean.
    lo, hi = min(spans), max(spans)
    amortization: Dict[str, Any] = {}
    for scheme in schemes:
        per_workload = {}
        for w in workloads:
            base = cells[f"{w}/{scheme}/k{lo}"]["decide_persist_per_xwrite"]
            deep = cells[f"{w}/{scheme}/k{hi}"]["decide_persist_per_xwrite"]
            per_workload[w] = round(base / deep, 3) if deep else 0.0
        amortization[scheme] = {
            "span_lo": lo,
            "span_hi": hi,
            "per_workload": per_workload,
            "geomean": round(geomean(per_workload.values()), 3),
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "params": {
            "workloads": list(workloads),
            "schemes": list(schemes),
            "spans": list(spans),
            "num_shards": num_shards,
            "num_clients": num_clients,
            "requests_per_client": requests_per_client,
            "value_bytes": value_bytes,
            "num_keys": num_keys,
            "theta": theta,
            "arrival_cycles": arrival_cycles,
            "batch_size": batch_size,
            "max_wait_cycles": max_wait_cycles,
            "seed": seed,
        },
        "cells": cells,
        "geomean": geomeans,
        "amortization": amortization,
        "host": {
            "seconds": round(host_seconds, 3),
            "cells_per_sec": round(len(keys) / host_seconds, 3)
            if host_seconds > 0
            else 0.0,
            "jobs": jobs,
        },
    }
