"""Sharded multi-system deployment with durable cross-shard 2PC.

The package scales the PR 6 transaction service out: the key space is
partitioned over N independent single-core systems (each its own
persistent memory, allocator, durable structure and resource manager), a
hash router sends single-key traffic to its home shard, and a
transaction coordinator runs presumed-abort two-phase commit for
multi-key transactions that span shards — with every protocol decision
persisted as a CRC-protected v1 log record in the participant's and the
coordinator's own PM log regions (:mod:`repro.mem.logregion` tags 5–8).

Modules:

* :mod:`repro.shard.router` — deterministic key → shard hashing;
* :mod:`repro.shard.twopc` — the coordinator, its durable decision
  records and the crash-step instrumentation the fuzz campaign drives;
* :mod:`repro.shard.deployment` — the N-shard serving loop (delegating
  wholesale to :class:`~repro.service.server.TransactionService` when
  ``num_shards == 1``, so the 2PC machinery is provably passive);
* :mod:`repro.shard.recovery` — post-crash in-doubt resolution from the
  durable decision records;
* :mod:`repro.shard.bench` — the ``bench --twopc`` grid behind
  ``BENCH_twopc.json``.
"""

from repro.shard.router import HashRouter, home_shard
from repro.shard.twopc import (
    GTX_BASE,
    Coordinator,
    ShardUnavailable,
    StepTracker,
)
from repro.shard.deployment import ShardedConfig, ShardedDeployment
from repro.shard.recovery import ResolutionReport, recover_deployment

__all__ = [
    "GTX_BASE",
    "Coordinator",
    "HashRouter",
    "ResolutionReport",
    "ShardUnavailable",
    "ShardedConfig",
    "ShardedDeployment",
    "StepTracker",
    "home_shard",
    "recover_deployment",
]
