"""Post-crash resolution of in-doubt cross-shard transactions.

:func:`recover_deployment` runs ordinary local recovery
(:func:`repro.recovery.engine.recover`) on the coordinator and every
shard, then resolves each global transaction whose protocol records
survived any log:

* **any durable ``decide-commit``** (coordinator's or a participant's
  own copy) → the transaction *must* commit: every shard holding
  ``prepare`` records but no *applied* marker (a plain ``commit``
  marker at the global seq — see :meth:`~repro.shard.deployment.
  ShardNode.apply_staged`) re-applies the staged writes now, then seals
  itself with that marker, so resolution is idempotent across repeated
  crashes;
* **otherwise → presumed abort**: the staged writes never touched the
  structure (prepare records are inert to local replay), so dropping
  them *is* the abort — no compensation needed, and a coordinator that
  crashed before persisting any decision costs nothing.

At most one global transaction can be in doubt at a crash — the
coordinator runs one ``commit_global`` at a time and applies phase 2
before returning — but the resolution pass makes no use of that: it
resolves every unsealed global transaction it finds, in ascending gtx
order, so it is also correct for logs assembled by fault injection.

Local recovery has already replayed/rolled back every *local*
transaction (including a participant's interrupted phase-2 apply, whose
undo records are ordinary local log entries) before resolution starts,
so re-applies always run against structurally consistent shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.recovery.engine import RecoveryReport, recover
from repro.shard.twopc import GTX_BASE, PreparedWrite

if TYPE_CHECKING:
    from repro.shard.deployment import ShardedDeployment


@dataclass
class ResolutionReport:
    """What cross-shard resolution saw and did."""

    #: Per-node local recovery reports, keyed ``coord`` / ``s{i}``.
    reports: Dict[str, RecoveryReport] = field(default_factory=dict)
    #: Final fate of every global transaction with surviving protocol
    #: records: gtx -> ``commit`` | ``abort``.
    fates: Dict[int, str] = field(default_factory=dict)
    #: Global transactions that were genuinely in doubt (staged but not
    #: sealed somewhere) when resolution started.
    in_doubt: List[int] = field(default_factory=list)
    #: Shards re-applied per committed gtx: gtx -> [shard ids].
    reapplied: Dict[int, List[int]] = field(default_factory=dict)
    #: ``(gtx, shard)`` pairs where a commit decision survived but the
    #: shard's ``prepared`` seal did not (only media corruption of
    #: prepare records can produce this; the campaign asserts it stays
    #: empty when faults target decision records).
    incomplete_stages: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def damaged_nodes(self) -> List[str]:
        """Nodes whose local log carried torn/corrupt entries."""
        return sorted(
            label for label, r in self.reports.items() if r.damaged
        )


def recover_deployment(
    dep: "ShardedDeployment",
    *,
    policy: str = "strict",
    from_bytes: bool = False,
    profiler: "Optional[object]" = None,
) -> ResolutionReport:
    """Recover every node of *dep* and resolve in-doubt global
    transactions from the durable decision records.

    Mutates the deployment in place: local recovery repairs each shard,
    then committed-but-unsealed global transactions re-apply (and seal)
    on the shards that missed phase 2.  Re-applied state is forced
    durable before returning.  *profiler* receives clock-free
    ``recovery.twopc_*`` counts (resolution runs outside any machine
    clock, matching local recovery's convention).
    """
    out = ResolutionReport()
    if dep.service is not None:
        # Single shard: plain local recovery; no protocol state exists.
        out.reports["s0"] = recover(
            dep.service.machine.pm,
            mode=dep.service.machine.scheme.logging_mode,
            hooks=[dep.service.subject],
            from_bytes=from_bytes,
            policy=policy,
            profiler=profiler,
        )
        return out

    out.reports["coord"] = recover(
        dep.coordinator.machine.pm,
        mode=dep.coordinator.machine.scheme.logging_mode,
        hooks=[],
        from_bytes=from_bytes,
        policy=policy,
        profiler=profiler,
    )
    for node in dep.nodes:
        node.staged.clear()  # volatile; rebuilt from prepare records
        out.reports[f"s{node.shard_id}"] = recover(
            node.machine.pm,
            mode=node.machine.scheme.logging_mode,
            hooks=[node.subject],
            from_bytes=from_bytes,
            policy=policy,
            profiler=profiler,
        )

    # Collect the surviving protocol state from every log.
    decisions: Dict[int, str] = {}
    staged: Dict[int, Dict[int, List[PreparedWrite]]] = {}
    sealed_stages: Dict[int, set] = {}
    for node in dep.nodes:
        report = out.reports[f"s{node.shard_id}"]
        for entry in report.twopc_entries:
            if entry.tx_seq < GTX_BASE:
                continue
            if entry.kind == "prepare":
                staged.setdefault(entry.tx_seq, {}).setdefault(
                    node.shard_id, []
                ).append((entry.addr, entry.words))
            elif entry.kind == "prepared":
                sealed_stages.setdefault(entry.tx_seq, set()).add(
                    node.shard_id
                )
    for label in out.reports:
        for entry in out.reports[label].twopc_entries:
            if entry.tx_seq < GTX_BASE:
                continue
            if entry.kind == "decide-commit":
                decisions[entry.tx_seq] = "commit"
            elif entry.kind == "decide-abort":
                decisions.setdefault(entry.tx_seq, "abort")

    # Resolve, ascending: commit where a decision says so, presumed
    # abort everywhere else.
    all_gtxs = sorted(set(decisions) | set(staged) | set(sealed_stages))
    for gtx in all_gtxs:
        fate = decisions.get(gtx, "abort")
        out.fates[gtx] = fate
        pending = [
            shard
            for shard, writes in staged.get(gtx, {}).items()
            if writes
            and out.reports[f"s{shard}"].dispositions.get(gtx) != "committed"
        ]
        if pending:
            out.in_doubt.append(gtx)
        if fate != "commit":
            continue
        for shard in sorted(pending):
            if shard not in sealed_stages.get(gtx, set()):
                # Commit decided, but this shard's stage lost its seal
                # to media damage: surviving writes still re-apply (the
                # decision is authoritative), and the gap is reported.
                out.incomplete_stages.append((gtx, shard))
            node = dep.nodes[shard]
            node.apply_staged(gtx, staged[gtx][shard])
            out.reapplied.setdefault(gtx, []).append(shard)

    # A shard that applied and sealed *during the crashed commit_global*
    # can have lost the Python-side fold into its committed oracle (the
    # crash fired between the durable seal and the fold).  Only the
    # in-flight global transaction can be in that window — historical
    # ones folded long ago (and may have been legitimately overwritten
    # since, so they must not be re-folded).
    if dep.inflight_gtx is not None:
        gtx, plan, _request = dep.inflight_gtx
        if out.fates.get(gtx) == "commit":
            for shard, writes in plan.items():
                for key, value in writes:
                    dep.nodes[shard].rm.committed[key] = tuple(value)

    # Force every re-applied shard's state durable (same tail as a
    # normal run's finish()).
    for gtx, shards in out.reapplied.items():
        for shard in shards:
            node = dep.nodes[shard]
            node.rt.run_empty_transactions(node.machine.config.num_tx_ids)
            node.machine.fence()

    if profiler is not None:
        if out.in_doubt:
            profiler.count("recovery.twopc_in_doubt", len(out.in_doubt))
        commits = sum(1 for f in out.fates.values() if f == "commit")
        aborts = len(out.fates) - commits
        if commits:
            profiler.count("recovery.twopc_resolved_commit", commits)
        if aborts:
            profiler.count("recovery.twopc_resolved_abort", aborts)
        reapplies = sum(len(s) for s in out.reapplied.values())
        if reapplies:
            profiler.count("recovery.twopc_reapplied", reapplies)
    return out
