"""Presumed-abort two-phase commit over PM log regions.

The coordinator and every participant persist their protocol state as
v1 log records (:mod:`repro.mem.logregion` tags 5–8) in their *own* PM
log region, exactly the role undo/redo records play for local
transactions:

* **prepare** (participant): one record per staged write — addr is the
  key, the payload the value words — followed by a **prepared** marker,
  all made durable in one synchronous drain (phase ``prepare-persist``);
* **decide-commit / decide-abort** (coordinator, then each participant
  in phase 2): the durable decision — addr is the deciding node's id,
  the payload the participant shard ids (phase ``decide-persist``);
* a plain **commit** marker carrying the global tx_seq seals a
  participant's phase-2 apply, so recovery can tell an applied shard
  from an in-doubt one.

Presumed abort: a global transaction with *no* durable decision record
anywhere is aborted by recovery — the coordinator therefore only needs
to persist a decision before phase 2 (commit) or when giving up on an
unresponsive participant (abort); the no-progress crash costs nothing.

Global transaction sequence numbers live at :data:`GTX_BASE` — far
above every per-core local sequence (``core_id * 10**12 + n``) and
comfortably inside the wire format's 52-bit field — so protocol records
can never collide with local transactions in any log.

Crash instrumentation: every protocol step reports to a
:class:`StepTracker`, and the fuzz campaign arms ``crash_at`` to cut
the protocol at each step — before prepare, after each participant
prepared, before the decision persist, and after the decision but
before any acknowledgement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import DEFAULT_CONFIG, SystemConfig
from repro.common.errors import PowerFailure, SimulationError
from repro.core.machine import Machine
from repro.core.schemes import Scheme, scheme_by_name
from repro.mem.pm import DurableLogEntry
from repro.obs.context import (
    TraceContext,
    decide_flow_id,
    gtx_flow_id,
    prepare_flow_id,
)
from repro.obs.profiler import CycleProfiler

#: Base of the global (cross-shard) transaction sequence namespace.
#: Fits the 52-bit wire field and clears every per-core local range.
GTX_BASE = 1 << 48

#: A staged write: (key, value words).
PreparedWrite = Tuple[int, Tuple[int, ...]]


class ShardUnavailable(SimulationError):
    """A participant did not answer a prepare request (test hook for
    the bounded-retry path; real shards in this simulator are in
    process and never silently vanish)."""


class StepTracker:
    """Deterministic protocol-step clock with an armed crash point.

    Every named step the protocol passes is appended to :attr:`names`;
    when :attr:`crash_at` equals the step's index, the tracker raises
    :class:`~repro.common.errors.PowerFailure` *at* that step.  A dry
    run with ``crash_at=None`` therefore enumerates the exact crash
    points a campaign can sweep.
    """

    def __init__(self) -> None:
        self.names: List[str] = []
        self.crash_at: Optional[int] = None

    def hit(self, name: str) -> None:
        index = len(self.names)
        self.names.append(name)
        if self.crash_at is not None and index == self.crash_at:
            raise PowerFailure(f"2pc step crash at #{index} ({name})")


class Coordinator:
    """The transaction coordinator: one machine, one durable log.

    The coordinator owns a dedicated :class:`~repro.core.machine.
    Machine` whose PM log region holds only protocol records, so its
    decision persists pay real WPQ drains, show up as ``decide-persist``
    spans, and are reachable by the same crash/fault injection as any
    shard's log.
    """

    def __init__(
        self,
        num_shards: int,
        scheme: "Scheme | str",
        config: SystemConfig = DEFAULT_CONFIG,
        *,
        prepare_attempts: int = 3,
        retry_wait_cycles: int = 500,
        max_attempts: int = 64,
        request_tracer=None,
        telemetry=None,
    ) -> None:
        if prepare_attempts < 1:
            raise SimulationError("prepare_attempts must be at least 1")
        if isinstance(scheme, str):
            scheme = scheme_by_name(scheme)
        #: Node id: shards are 0..N-1, the coordinator is N.
        self.node_id = num_shards
        #: Request-span sink; gtx spans and PREPARE/DECIDE flow arrows
        #: originate on the coordinator's own track (``node_id``).
        self.request_tracer = request_tracer
        #: Windowed metrics sink for ``decisions`` / ``decide_latency``
        #: (measured entirely on the coordinator clock).
        self.telemetry = telemetry
        self.machine = Machine(scheme, config, core_id=self.node_id)
        self.profiler = CycleProfiler()
        self.profiler.bind(self.machine.now)
        self.machine.profiler = self.profiler
        self.steps = StepTracker()
        self.prepare_attempts = prepare_attempts
        self.retry_wait_cycles = retry_wait_cycles
        self.max_attempts = max_attempts
        self.committed_gtxs = 0
        self.aborted_gtxs = 0
        self.prepare_retries = 0
        self._next_gtx = GTX_BASE + 1

    def new_gtx(self) -> int:
        gtx = self._next_gtx
        self._next_gtx += 1
        return gtx

    # --- durable protocol state ----------------------------------------

    def persist_decision(
        self, gtx: int, kind: str, shard_ids: Sequence[int], *,
        step: str = "pre-decision",
    ) -> None:
        """Write the durable decision record for *gtx* to the
        coordinator's own log (one synchronous ``decide-persist``).

        The machine-tracer span is labelled with the gtx id and its
        2PC *step* family rather than an anonymous persist."""
        self.machine.persist_protocol_entries(
            [
                DurableLogEntry(
                    kind=kind,
                    tx_seq=gtx,
                    addr=self.node_id,
                    words=tuple(shard_ids),
                )
            ],
            phase="decide-persist",
            label={"gtx": gtx - GTX_BASE, "step": step},
        )

    # --- request-span emission ------------------------------------------

    def _emit(self, kind: str, track: int, ts: int, **fields) -> None:
        if self.request_tracer is not None:
            self.request_tracer.emit(ts, track, kind, **fields)

    @staticmethod
    def _participant_now(participant, fallback: int) -> int:
        machine = getattr(participant, "machine", None)
        return fallback if machine is None else machine.now

    # --- the protocol ---------------------------------------------------

    def commit_global(
        self,
        gtx: int,
        plan: "Dict[int, List[PreparedWrite]]",
        participants: "Dict[int, object]",
        *,
        ctx: "Optional[TraceContext]" = None,
    ) -> str:
        """Run one global transaction to a durable decision.

        *plan* maps shard id → staged writes; *participants* maps shard
        id → the shard node (anything with ``prepare``/``commit``/
        ``abort``).  Returns ``"commit"`` or ``"abort"``.  On commit,
        every participant has applied and sealed its part before this
        returns — the caller's acknowledgement is covered by durable
        state on all shards.

        *ctx* is the originating request's trace identity; when a
        request tracer is attached, the gtx span opens on the
        coordinator track carrying it, and every PREPARE / DECIDE
        crossing to a participant emits a flow-arrow pair.
        """
        shard_ids = sorted(plan)
        if len(shard_ids) > 8:
            raise SimulationError(
                "a decision record holds at most 8 participant ids"
            )
        g = gtx - GTX_BASE
        label = f"g{g}"
        started_at = self.machine.now
        info = dict(ctx.fields()) if ctx is not None else {}
        info["gtx"] = g
        self._emit(
            "gtx_begin",
            self.node_id,
            started_at,
            flow=gtx_flow_id(g),
            shards=list(shard_ids),
            **info,
        )
        self.steps.hit(f"pre-prepare:{label}")
        prepared: List[int] = []
        for shard in shard_ids:
            self._emit(
                "prepare_send",
                self.node_id,
                self.machine.now,
                flow=prepare_flow_id(g, shard),
                gtx=g,
                shard=shard,
            )
            if not self._prepare_with_retry(
                participants[shard], gtx, plan[shard]
            ):
                # Unresponsive participant: durable abort, then tell
                # everyone who already prepared (presumed abort makes
                # the record optional, but persisting it lets recovery
                # resolve without re-contacting anyone).
                self.steps.hit(f"prepare-failed:{label}:s{shard}")
                self.persist_decision(
                    gtx, "decide-abort", shard_ids, step="prepare-failed"
                )
                self._count_decision(started_at)
                for done in prepared:
                    self._emit(
                        "decide_send",
                        self.node_id,
                        self.machine.now,
                        flow=decide_flow_id(g, done),
                        gtx=g,
                        shard=done,
                        fate="abort",
                    )
                    participants[done].abort(gtx, shard_ids)
                    self._emit(
                        "decide_done",
                        done,
                        self._participant_now(
                            participants[done], self.machine.now
                        ),
                        flow=decide_flow_id(g, done),
                        gtx=g,
                        shard=done,
                        fate="abort",
                    )
                self.aborted_gtxs += 1
                self._emit(
                    "gtx_end",
                    self.node_id,
                    self.machine.now,
                    flow=gtx_flow_id(g),
                    fate="abort",
                    **info,
                )
                return "abort"
            prepared.append(shard)
            self._emit(
                "prepare_done",
                shard,
                self._participant_now(participants[shard], self.machine.now),
                flow=prepare_flow_id(g, shard),
                gtx=g,
                shard=shard,
            )
            self.steps.hit(f"prepared:{label}:s{shard}")
        self.steps.hit(f"pre-decision:{label}")
        self.persist_decision(gtx, "decide-commit", shard_ids)
        self._count_decision(started_at)
        self.steps.hit(f"post-decision:{label}")
        for shard in shard_ids:
            self._emit(
                "decide_send",
                self.node_id,
                self.machine.now,
                flow=decide_flow_id(g, shard),
                gtx=g,
                shard=shard,
                fate="commit",
            )
            participants[shard].commit(gtx, shard_ids)
            self._emit(
                "decide_done",
                shard,
                self._participant_now(participants[shard], self.machine.now),
                flow=decide_flow_id(g, shard),
                gtx=g,
                shard=shard,
                fate="commit",
            )
            self.steps.hit(f"applied:{label}:s{shard}")
        self.committed_gtxs += 1
        self._emit(
            "gtx_end",
            self.node_id,
            self.machine.now,
            flow=gtx_flow_id(g),
            fate="commit",
            **info,
        )
        return "commit"

    def _count_decision(self, started_at: int) -> None:
        """Windowed 2PC decision accounting (coordinator clock only)."""
        if self.telemetry is None:
            return
        now = self.machine.now
        self.telemetry.count(now, "decisions")
        self.telemetry.record(now, "decide_latency", now - started_at)

    def _prepare_with_retry(
        self, participant, gtx: int, writes: "List[PreparedWrite]"
    ) -> bool:
        """Prepare one participant, retrying a bounded, deterministic
        number of times; each retry waits ``retry_wait_cycles`` on the
        coordinator clock (the timeout model)."""
        for _ in range(self.prepare_attempts):
            try:
                participant.prepare(gtx, writes)
                return True
            except ShardUnavailable:
                self.prepare_retries += 1
                self.machine.now += self.retry_wait_cycles
        return False
