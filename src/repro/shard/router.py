"""Deterministic hash routing of keys to shards.

The home shard of a key is a pure function of ``(key, num_shards)`` —
CRC-32 of the key's 8-byte little-endian encoding, modulo the shard
count — so every client, the coordinator and the recovery pass agree on
key placement without any routing table.  CRC-32 spreads the dense
``KEY_BASE + rank`` key population far better than ``key % N`` would
(which degenerates to rank parity for N=2).
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Sequence, Tuple


def home_shard(key: int, num_shards: int) -> int:
    """The shard that owns *key* (deterministic, table-free)."""
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if num_shards == 1:
        return 0
    return zlib.crc32(key.to_bytes(8, "little")) % num_shards


class HashRouter:
    """Key placement for one deployment size."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = num_shards

    def home(self, key: int) -> int:
        return home_shard(key, self.num_shards)

    def split(
        self, keys: Sequence[int]
    ) -> "Dict[int, List[Tuple[int, int]]]":
        """Group *keys* by home shard, preserving each key's position.

        Returns ``{shard: [(index, key), ...]}`` with shards in
        ascending id order and keys in their original sequence order —
        the deterministic participant ordering the coordinator iterates.
        """
        groups: Dict[int, List[Tuple[int, int]]] = {}
        for index, key in enumerate(keys):
            groups.setdefault(self.home(key), []).append((index, key))
        return {shard: groups[shard] for shard in sorted(groups)}

    def spans(self, keys: Sequence[int]) -> Tuple[int, ...]:
        """The sorted set of shards *keys* touch."""
        return tuple(sorted({self.home(key) for key in keys}))
