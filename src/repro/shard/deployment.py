"""The N-shard deployment: hash-routed serving over independent systems.

Each shard is a complete single-core system behind the PR 6 service
stack — its own :class:`~repro.mem.pm.PersistentMemory`, allocator,
durable structure, resource manager and transaction manager — built as a
one-core :class:`~repro.multicore.system.MultiCoreSystem` so shards stay
upgrade-compatible with the contention scheduler.  A
:class:`~repro.shard.router.HashRouter` sends single-key traffic to its
home shard; multi-key transactions that span shards go through the
:class:`~repro.shard.twopc.Coordinator`'s presumed-abort two-phase
commit, every protocol decision durable as a v1 log record before it
takes effect.

Determinism: streams, arrivals, routing and every protocol step derive
from :class:`ShardedConfig` alone.  Requests are processed in global
``(arrival time, client)`` order; per-shard group-commit batches flush
at ``batch_size`` and any residual flushes at end of stream, so two runs
of one config are byte-identical.

Passivity: with ``num_shards == 1`` the deployment builds a plain
:class:`~repro.service.server.TransactionService` from the equivalent
:class:`~repro.service.server.ServiceConfig` and delegates wholesale —
no router, no coordinator, no protocol record is ever constructed, so
the single-shard path is bit-identical to the PR 6 service (pinned
against ``BENCH_service.json`` by the test suite).

Durability semantics (the campaign's contract): an ``ok`` response is
recorded only after the covering commit is durable — a local batch's
``tx_end``, or phase 2 of 2PC completing on *every* participant.  An
``aborted`` response (coordinator gave up on an unresponsive
participant) guarantees the transaction is durable *nowhere*.  A crash
mid-protocol leaves at most one local batch (``inflight_local``) and one
global transaction (``inflight_gtx``) undecided; recovery resolves the
latter from durable decision records alone
(:func:`repro.shard.recovery.recover_deployment`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common import units
from repro.common.config import DEFAULT_CONFIG, SystemConfig
from repro.common.errors import SimulationError
from repro.common.stats import SimStats
from repro.core.schemes import scheme_by_name
from repro.mem.pm import DurableLogEntry
from repro.multicore.system import MultiCoreSystem, run_atomically
from repro.obs.context import TraceContext, for_request
from repro.obs.profiler import CycleProfiler
from repro.service.admission import AdmissionPolicy
from repro.service.model import Request, Response, arrival_gaps, generate_streams
from repro.service.rm import ResourceManager
from repro.service.server import ServiceConfig, TransactionService
from repro.service.tm import GroupCommitPolicy, TransactionManager
from repro.shard.router import HashRouter
from repro.shard.twopc import (
    GTX_BASE,
    Coordinator,
    PreparedWrite,
    ShardUnavailable,
)
from repro.workloads import WORKLOADS


@dataclass
class ShardedConfig:
    """Everything an N-shard run derives from (all seeded, all scalar).

    The serving knobs mirror :class:`~repro.service.server.ServiceConfig`
    (open-loop only); ``prepare_attempts`` / ``retry_wait_cycles`` bound
    the coordinator's deterministic retry of unresponsive participants.
    """

    num_shards: int = 2
    workload: str = "hashtable"
    scheme: str = "SLPMT"
    num_clients: int = 4
    requests_per_client: int = 25
    value_bytes: int = 64
    num_keys: int = 64
    theta: float = 0.0
    mix: Optional[Dict[str, float]] = None
    txn_keys: int = 3
    scan_count: int = 4
    arrival_cycles: int = 3000
    batch: GroupCommitPolicy = field(default_factory=GroupCommitPolicy)
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    max_attempts: int = 64
    prepare_attempts: int = 3
    retry_wait_cycles: int = 500
    seed: int = 2023
    check_reads: bool = True
    verify: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.num_shards <= 8:
            # A decision record carries the participant set as payload
            # words; the v1 wire format caps payloads at 8 words.
            raise ValueError("num_shards must be between 1 and 8")
        if self.value_bytes // units.WORD_BYTES > 8:
            raise ValueError(
                "value_bytes must fit a prepare record's 8-word payload"
            )

    def service_config(self) -> ServiceConfig:
        """The equivalent single-machine config (the N=1 delegate)."""
        return ServiceConfig(
            workload=self.workload,
            scheme=self.scheme,
            num_clients=self.num_clients,
            requests_per_client=self.requests_per_client,
            value_bytes=self.value_bytes,
            num_keys=self.num_keys,
            theta=self.theta,
            mix=self.mix,
            txn_keys=self.txn_keys,
            scan_count=self.scan_count,
            mode="open",
            arrival_cycles=self.arrival_cycles,
            batch=self.batch,
            admission=self.admission,
            max_attempts=self.max_attempts,
            seed=self.seed,
            check_reads=self.check_reads,
            verify=self.verify,
        )


class ShardNode:
    """One shard: a single-core system plus its 2PC participant half.

    The participant contract (what the coordinator calls):

    * :meth:`prepare` — stage the writes and make them durable as
      ``prepare`` records sealed by a ``prepared`` marker (phase
      ``prepare-persist``); raising :class:`~repro.shard.twopc.
      ShardUnavailable` models an unresponsive shard.
    * :meth:`commit` — persist the shard's own ``decide-commit`` record,
      apply the staged writes in one local transaction, then seal with a
      plain ``commit`` marker at the global seq (the *applied* marker
      recovery uses for idempotence).
    * :meth:`abort` — persist ``decide-abort`` and drop the stage.
    """

    def __init__(
        self,
        shard_id: int,
        cfg: ShardedConfig,
        *,
        config: SystemConfig = DEFAULT_CONFIG,
        request_tracer=None,
    ) -> None:
        self.shard_id = shard_id
        self.cfg = cfg
        self.request_tracer = request_tracer
        self.system = MultiCoreSystem(1, scheme_by_name(cfg.scheme), config)
        self.machine = self.system.cores[0]
        self.rt = self.system.runtimes[0]
        self.profiler = CycleProfiler()
        self.profiler.bind(self.machine.now)
        self.machine.profiler = self.profiler
        self.subject = WORKLOADS[cfg.workload](
            self.rt, value_bytes=cfg.value_bytes
        )
        self.rm = ResourceManager(
            self.subject, request_tracer=request_tracer, track=shard_id
        )
        self.tm = TransactionManager(
            self.rt,
            self.rm,
            max_attempts=cfg.max_attempts,
            request_tracer=request_tracer,
            track=shard_id,
        )
        #: Writes pending in this shard's group-commit batch:
        #: ``(request, submitted_at)`` in arrival order.
        self.pending: List[Tuple[Request, int]] = []
        #: Prepared-but-undecided global transactions: gtx -> writes.
        self.staged: Dict[int, List[PreparedWrite]] = {}
        #: Test hook: fail the next N prepare calls (unresponsive shard).
        self.fail_prepares = 0

    # --- 2PC participant half -------------------------------------------

    def prepare(self, gtx: int, writes: "Sequence[PreparedWrite]") -> None:
        if self.fail_prepares > 0:
            self.fail_prepares -= 1
            raise ShardUnavailable(
                f"shard {self.shard_id} unresponsive to prepare({gtx})"
            )
        entries = [
            DurableLogEntry(kind="prepare", tx_seq=gtx, addr=key, words=value)
            for key, value in writes
        ]
        entries.append(DurableLogEntry(kind="prepared", tx_seq=gtx))
        self.machine.persist_protocol_entries(
            entries,
            phase="prepare-persist",
            label={"gtx": gtx - GTX_BASE, "step": "prepared"},
        )
        self.staged[gtx] = list(writes)

    def commit(self, gtx: int, shard_ids: "Sequence[int]") -> None:
        writes = self.staged.get(gtx)
        if writes is None:
            raise SimulationError(
                f"shard {self.shard_id}: commit({gtx}) without prepare"
            )
        # The shard's own durable copy of the decision: recovery can
        # resolve from any surviving log, not only the coordinator's.
        self.machine.persist_protocol_entries(
            [
                DurableLogEntry(
                    kind="decide-commit",
                    tx_seq=gtx,
                    addr=self.shard_id,
                    words=tuple(shard_ids),
                )
            ],
            phase="decide-persist",
            label={"gtx": gtx - GTX_BASE, "step": "post-decision"},
        )
        self.apply_staged(gtx, writes)

    def apply_staged(self, gtx: int, writes: "Sequence[PreparedWrite]") -> None:
        """Apply *writes* in one local transaction and seal it with the
        applied marker (shared by phase 2 and crash recovery)."""
        for key, _ in writes:
            self.subject.before_transaction(key)

        def body() -> None:
            for key, value in writes:
                self.subject._insert(key, list(value))

        run_atomically(self.rt, body, max_attempts=self.cfg.max_attempts)
        # Seal: a plain commit marker at the global seq.  Recovery skips
        # the re-apply on shards whose log shows this marker.
        self.machine.persist_protocol_entries(
            [DurableLogEntry(kind="commit", tx_seq=gtx)],
            phase="decide-persist",
            label={"gtx": gtx - GTX_BASE, "step": "applied"},
        )
        for key, value in writes:
            self.rm.committed[key] = tuple(value)
        self.staged.pop(gtx, None)

    def abort(self, gtx: int, shard_ids: "Sequence[int]") -> None:
        if gtx in self.staged:
            self.machine.persist_protocol_entries(
                [
                    DurableLogEntry(
                        kind="decide-abort",
                        tx_seq=gtx,
                        addr=self.shard_id,
                        words=tuple(shard_ids),
                    )
                ],
                phase="decide-persist",
                label={"gtx": gtx - GTX_BASE, "step": "post-decision"},
            )
            del self.staged[gtx]


@dataclass
class ShardedResult:
    """Headline metrics of one sharded run (cycles / pm_bytes summed
    over every node and the coordinator, snapshotted at end of serving)."""

    num_shards: int
    workload: str
    scheme: str
    requests: int
    acked: int
    aborted: int
    reads: int
    batches: int
    committed_writes: int
    xshard_commits: int
    xshard_aborts: int
    xshard_writes: int
    prepare_retries: int
    cycles: int
    pm_bytes: int
    prepare_persist_cycles: int
    decide_persist_cycles: int
    phases: Dict[str, int]
    responses: List[Response]
    stats: SimStats

    @property
    def decide_persist_per_xwrite(self) -> float:
        """Decision-persist cycles amortised per committed cross-shard
        key write — the 2PC overhead headline."""
        return self.decide_persist_cycles / max(1, self.xshard_writes)


class ShardedDeployment:
    """N shards, one router, one coordinator (see module docstring)."""

    def __init__(
        self,
        cfg: ShardedConfig,
        *,
        config: SystemConfig = DEFAULT_CONFIG,
        telemetry=None,
        request_tracer=None,
    ) -> None:
        self.cfg = cfg
        self.config = config
        #: Windowed metrics sink.  Caveat of the deployment's clock
        #: model: each sample is windowed by the *responding* node's own
        #: clock (shards are independent clock domains); counters from
        #: different shards land in comparable but not globally ordered
        #: windows.  2PC decide latency avoids this by living entirely
        #: on the coordinator clock.
        self.telemetry = telemetry
        #: Request-span sink: shard *i* on track *i*, the coordinator on
        #: track ``num_shards``.
        self.request_tracer = request_tracer
        #: The N=1 delegate (2PC machinery provably passive).
        self.service: Optional[TransactionService] = None
        self.nodes: List[ShardNode] = []
        if cfg.num_shards == 1:
            self.service = TransactionService(
                cfg.service_config(),
                config=config,
                telemetry=telemetry,
                request_tracer=request_tracer,
            )
            return
        self.router = HashRouter(cfg.num_shards)
        self.nodes = [
            ShardNode(
                shard, cfg, config=config, request_tracer=request_tracer
            )
            for shard in range(cfg.num_shards)
        ]
        self.coordinator = Coordinator(
            cfg.num_shards,
            cfg.scheme,
            config,
            prepare_attempts=cfg.prepare_attempts,
            retry_wait_cycles=cfg.retry_wait_cycles,
            max_attempts=cfg.max_attempts,
            request_tracer=request_tracer,
            telemetry=telemetry,
        )
        value_words = cfg.value_bytes // units.WORD_BYTES
        self.streams = generate_streams(
            cfg.num_clients,
            cfg.requests_per_client,
            mix=cfg.mix,
            num_keys=cfg.num_keys,
            theta=cfg.theta,
            value_words=value_words,
            txn_keys=cfg.txn_keys,
            scan_count=cfg.scan_count,
            seed=cfg.seed,
        )
        self.responses: List[Response] = []
        #: Global acked-write oracle: key -> value tuple.
        self.committed: Dict[int, Tuple[int, ...]] = {}
        #: The local batch inside ``commit_batch`` right now, if any:
        #: ``(shard_id, [requests])`` — the crash harness's undecided set.
        self.inflight_local: Optional[Tuple[int, List[Request]]] = None
        #: The global transaction inside ``commit_global`` right now:
        #: ``(gtx, {shard: [(key, value)]}, request)``.
        self.inflight_gtx: Optional[
            Tuple[int, Dict[int, List[PreparedWrite]], Request]
        ] = None
        #: Decided global transactions: gtx -> "commit" | "abort".
        self.fates: Dict[int, str] = {}
        self.requests = 0
        self.reads = 0
        self.batches = 0
        self.committed_writes = 0
        self.xshard_writes = 0
        self.aborted = 0
        self._served = False
        self._finished = False
        self._serve_end: Optional[Tuple[int, int, Dict[str, int]]] = None

    # --- machine inventory (crash/fault harness) ------------------------

    def all_machines(self) -> "List[Tuple[str, object]]":
        """Every machine in the deployment, labelled: the coordinator as
        ``coord``, shard *i* as ``s{i}`` — the crash/fault injection
        surface."""
        if self.service is not None:
            return [("s0", self.service.machine)]
        out: List[Tuple[str, object]] = [("coord", self.coordinator.machine)]
        out.extend((f"s{n.shard_id}", n.machine) for n in self.nodes)
        return out

    def crash(self) -> None:
        """Power-fail every node *directly at the machine level* (the
        one-core scheduler never runs, so it must not enter its crashed
        state — recovery re-apply transactions still need checkpoints to
        no-op)."""
        if self.service is not None:
            self.service.machine.crash()
            return
        self.coordinator.machine.crash()
        for node in self.nodes:
            node.machine.crash()

    # --- serving ---------------------------------------------------------

    def serve(self) -> None:
        if self.service is not None:
            self.service.serve()
            return
        if self._served:
            raise RuntimeError("serve() already ran")
        self._served = True
        cfg = self.cfg
        events: List[Tuple[int, int, Request]] = []
        for client in range(cfg.num_clients):
            gaps = arrival_gaps(
                client,
                cfg.requests_per_client,
                mean_cycles=cfg.arrival_cycles,
                seed=cfg.seed,
            )
            at = 0
            for gap, request in zip(gaps, self.streams[client]):
                at += gap
                events.append((at, client, request))
        events.sort(key=lambda e: (e[0], e[1]))
        for at, _, request in events:
            self._dispatch(request, at)
        # End of stream: flush every residual partial batch.
        for node in self.nodes:
            self._flush(node)
        self._serve_end = (
            self._total_cycles(),
            self._total_pm_bytes(),
            self._merged_phases(),
        )

    def _dispatch(self, request: Request, at: int) -> None:
        self.requests += 1
        if request.kind == "get":
            shard = self.router.home(request.keys[0])
            node = self.nodes[shard]
            ctx = for_request(request, shard=shard)
            self._open_span(ctx, at, op=request.kind)
            values = node.rm.read_get(
                request, check=self.cfg.check_reads, ctx=ctx
            )
            self.reads += 1
            self._record(request, at, "ok", node.machine.now, values,
                         shard=shard)
        elif request.kind == "scan":
            shard = self.router.home(request.keys[0])
            ctx = for_request(request, shard=shard)
            self._open_span(ctx, at, op=request.kind)
            values = self._scan(request, ctx=ctx)
            self.reads += 1
            completed = max(node.machine.now for node in self.nodes)
            self._record(request, at, "ok", completed, values, shard=shard)
        else:  # put / txn
            spans = self.router.spans(request.keys)
            if len(spans) == 1:
                self._enqueue_write(self.nodes[spans[0]], request, at)
            else:
                self._commit_cross_shard(request, at)

    def _scan(
        self, request: Request, *, ctx: "Optional[TraceContext]" = None
    ) -> Tuple:
        """A scan fans out to every shard (each checks against its own
        slice of the oracle) and merges by key order."""
        merged: List[Tuple[int, Tuple[int, ...]]] = []
        for node in self.nodes:
            merged.extend(
                node.rm.read_scan(
                    request,
                    check=self.cfg.check_reads,
                    ctx=None if ctx is None else ctx.child(
                        shard=node.shard_id
                    ),
                )
            )
        merged.sort()
        return tuple(merged[: request.scan_count])

    def _open_span(
        self, ctx: TraceContext, submitted_at: int, *, op: str
    ) -> None:
        """Open a request span on its home-shard track (no-op without a
        tracer); :meth:`_record` closes it at the response."""
        if self.request_tracer is None:
            return
        self.request_tracer.emit(
            submitted_at,
            ctx.shard if ctx.shard is not None else 0,
            "req_begin",
            flow=ctx.flow_id,
            op=op,
            **ctx.fields(),
        )

    def _record(
        self,
        request: Request,
        submitted_at: int,
        status: str,
        completed_at: int,
        values: Tuple = (),
        *,
        shard: "Optional[int]" = None,
        gtx: "Optional[int]" = None,
    ) -> None:
        if self.telemetry is not None:
            if status == "ok":
                self.telemetry.count(completed_at, "acked")
                self.telemetry.record(
                    completed_at, "latency", completed_at - submitted_at
                )
                if request.kind in ("get", "scan"):
                    self.telemetry.count(completed_at, "reads")
                else:
                    self.telemetry.count(completed_at, "writes")
            else:
                self.telemetry.count(completed_at, "aborted")
        if self.request_tracer is not None and shard is not None:
            ctx = for_request(request, shard=shard)
            if gtx is not None:
                ctx = ctx.child(gtx=gtx)
            self.request_tracer.emit(
                completed_at,
                shard,
                "req_ack",
                flow=ctx.flow_id,
                status=status,
                **ctx.fields(),
            )
        self.responses.append(
            Response(
                client=request.client,
                seq=request.seq,
                kind=request.kind,
                status=status,
                submitted_at=submitted_at,
                completed_at=completed_at,
                values=values,
            )
        )

    # --- local (single-shard) writes -------------------------------------

    def _enqueue_write(self, node: ShardNode, request: Request, at: int) -> None:
        self._open_span(
            for_request(request, shard=node.shard_id), at, op=request.kind
        )
        node.pending.append((request, at))
        if len(node.pending) >= self.cfg.batch.batch_size:
            self._flush(node)

    def _flush(self, node: ShardNode) -> bool:
        if not node.pending:
            return False
        batch = node.pending
        node.pending = []
        requests = [request for request, _ in batch]
        if self.telemetry is not None:
            self.telemetry.count(node.machine.now, "batches")
        contexts = None
        if self.request_tracer is not None:
            batch_no = node.tm.commits + 1
            contexts = [
                for_request(r, shard=node.shard_id).child(batch=batch_no)
                for r in requests
            ]
        for request in requests:
            for key in request.keys:
                node.subject.before_transaction(key)
        self.inflight_local = (node.shard_id, requests)
        node.tm.commit_batch(requests, contexts=contexts)
        # tx_end returned: the batch commit marker is durable, and the
        # acks below involve no simulated work (no crash can separate
        # them from the commit).
        completed_at = node.machine.now
        for request, submitted_at in batch:
            for key, value in zip(request.keys, request.values):
                self.committed[key] = tuple(value)
            self.committed_writes += 1
            self._record(
                request, submitted_at, "ok", completed_at,
                shard=node.shard_id,
            )
        self.inflight_local = None
        self.batches += 1
        return True

    # --- cross-shard transactions ----------------------------------------

    def _commit_cross_shard(self, request: Request, at: int) -> None:
        groups = self.router.split(request.keys)
        # Flush the participants' pending batches first so the global
        # transaction orders after every write already accepted.
        for shard in groups:
            self._flush(self.nodes[shard])
        plan: Dict[int, List[PreparedWrite]] = {
            shard: [
                (key, tuple(request.values[index])) for index, key in pairs
            ]
            for shard, pairs in groups.items()
        }
        gtx = self.coordinator.new_gtx()
        g = gtx - GTX_BASE
        home = self.router.home(request.keys[0])
        ctx = for_request(request, shard=home).child(gtx=g)
        self._open_span(ctx, at, op=request.kind)
        participants = {shard: self.nodes[shard] for shard in groups}
        self.inflight_gtx = (gtx, plan, request)
        fate = self.coordinator.commit_global(
            gtx, plan, participants, ctx=ctx
        )
        self.fates[gtx] = fate
        if fate == "commit":
            completed_at = max(
                self.nodes[shard].machine.now for shard in groups
            )
            for writes in plan.values():
                for key, value in writes:
                    self.committed[key] = tuple(value)
            self.committed_writes += 1
            self.xshard_writes += len(request.keys)
            self._record(
                request, at, "ok", completed_at, shard=home, gtx=g
            )
        else:
            self.aborted += 1
            self._record(
                request, at, "aborted", self.coordinator.machine.now,
                shard=home, gtx=g,
            )
        self.inflight_gtx = None

    # --- lifecycle --------------------------------------------------------

    def finish(self) -> None:
        """Validation tail: force lazy state durable on every shard and
        verify each durable image against that shard's oracle."""
        if self.service is not None:
            self.service.finish()
            return
        if self._finished:
            return
        self._finished = True
        for node in self.nodes:
            node.rt.run_empty_transactions(node.machine.config.num_tx_ids)
            node.machine.fence()
            node.machine.finalize()
        self.coordinator.machine.finalize()
        if self.cfg.verify:
            for node in self.nodes:
                node.rm.sync_expected()
                node.subject.verify(durable=True)

    def _total_cycles(self) -> int:
        return self.coordinator.machine.now + sum(
            node.machine.now for node in self.nodes
        )

    def _total_pm_bytes(self) -> int:
        return self.coordinator.machine.stats.pm_bytes_written + sum(
            node.machine.stats.pm_bytes_written for node in self.nodes
        )

    def _merged_phases(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        profilers = [self.coordinator.profiler] + [
            node.profiler for node in self.nodes
        ]
        for profiler in profilers:
            for phase, cycles in profiler.phase_cycles.items():
                merged[phase] = merged.get(phase, 0) + cycles
        return merged

    def result(self) -> ShardedResult:
        if self.service is not None:
            r = self.service.result()
            return ShardedResult(
                num_shards=1,
                workload=r.workload,
                scheme=r.scheme,
                requests=r.requests,
                acked=r.acked,
                aborted=0,
                reads=r.reads,
                batches=r.batches,
                committed_writes=r.committed_writes,
                xshard_commits=0,
                xshard_aborts=0,
                xshard_writes=0,
                prepare_retries=0,
                cycles=r.cycles,
                pm_bytes=r.pm_bytes,
                prepare_persist_cycles=0,
                decide_persist_cycles=0,
                phases=r.phases,
                responses=r.responses,
                stats=r.stats,
            )
        if self._serve_end is not None:
            cycles, pm_bytes, phases = self._serve_end
        else:
            cycles = self._total_cycles()
            pm_bytes = self._total_pm_bytes()
            phases = self._merged_phases()
        stats = SimStats()
        for node in self.nodes:
            stats.add(node.machine.stats)
        stats.add(self.coordinator.machine.stats)
        acked = sum(1 for r in self.responses if r.status == "ok")
        return ShardedResult(
            num_shards=self.cfg.num_shards,
            workload=self.cfg.workload,
            scheme=self.cfg.scheme,
            requests=self.requests,
            acked=acked,
            aborted=self.aborted,
            reads=self.reads,
            batches=self.batches,
            committed_writes=self.committed_writes,
            xshard_commits=self.coordinator.committed_gtxs,
            xshard_aborts=self.coordinator.aborted_gtxs,
            xshard_writes=self.xshard_writes,
            prepare_retries=self.coordinator.prepare_retries,
            cycles=cycles,
            pm_bytes=pm_bytes,
            prepare_persist_cycles=phases.get("prepare-persist", 0),
            decide_persist_cycles=phases.get("decide-persist", 0),
            phases=phases,
            responses=list(self.responses),
            stats=stats,
        )

    def run(self) -> ShardedResult:
        """serve + finish + result (the one-call front door)."""
        self.serve()
        self.finish()
        return self.result()


def run_sharded(
    cfg: ShardedConfig,
    *,
    config: SystemConfig = DEFAULT_CONFIG,
    telemetry=None,
    request_tracer=None,
) -> ShardedResult:
    """Build and run one :class:`ShardedDeployment`."""
    return ShardedDeployment(
        cfg,
        config=config,
        telemetry=telemetry,
        request_tracer=request_tracer,
    ).run()
