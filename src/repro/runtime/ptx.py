"""PTx — the programmer-facing persistent-transaction runtime.

PTx wraps a :class:`~repro.core.machine.Machine` and a
:class:`~repro.alloc.PersistentAllocator` behind the small API the
workload data structures are written against:

* ``with ptx.transaction(): ...`` delimits a durable transaction;
* :meth:`PTx.load` / :meth:`PTx.store` issue simulated word accesses;
* every store takes a :class:`~repro.runtime.hints.Hint`, and the active
  :class:`~repro.runtime.hints.AnnotationPolicy` decides whether the
  access becomes a plain ``store`` or a ``storeT`` with the Table-I flag
  combination for that hint;
* struct-field helpers (:meth:`PTx.read_field` / :meth:`PTx.write_field`)
  and bulk helpers (:meth:`PTx.write_words`) keep workload code close to
  the C it models.

The runtime executes eagerly against the machine (no program list is
materialised), so data-dependent control flow — tree rebalancing, hash
resizing — reads simulated memory mid-transaction exactly like the real
kernels do.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence

from repro.alloc.allocator import PersistentAllocator
from repro.alloc.objects import StructLayout
from repro.common.errors import (
    PowerFailure,
    RetryExhausted,
    TransactionAborted,
)
from repro.core.machine import Machine
from repro.runtime.hints import NO_ANNOTATIONS, AnnotationPolicy, Hint

#: Cap on the exponential-backoff shift: the n-th wait lasts
#: ``base << min(n - 1, BACKOFF_SHIFT_CAP)`` cycles, so deep retry loops
#: grow linearly past the cap instead of overflowing the cycle budget.
BACKOFF_SHIFT_CAP = 10


class PTx:
    """Persistent transactional runtime bound to one machine."""

    def __init__(
        self,
        machine: Machine,
        allocator: "PersistentAllocator | None" = None,
        policy: AnnotationPolicy = NO_ANNOTATIONS,
    ) -> None:
        self.machine = machine
        self.allocator = allocator or PersistentAllocator()
        self.policy = policy
        #: Allocations made by the currently running transaction; a
        #: store into one of these regions is NEW_ALLOC by construction.
        self._tx_allocs: List[int] = []
        #: Frees requested by the running transaction.  They take effect
        #: at commit (PMDK semantics): releasing memory mid-transaction
        #: would let log-free stores clobber data that post-crash
        #: recovery may still need.
        self._tx_frees: List[int] = []
        #: Whether the most recent transaction scope ended in an abort
        #: (explicit or by a conflicting peer); retry loops read this.
        self.last_aborted = False
        #: Optional transaction-outcome observer (``committed()`` /
        #: ``aborted()``, e.g. :class:`repro.fuzz.oplog.OpLog`).  A crash
        #: reports nothing: the power failure propagates untouched and
        #: the observer's last committed mark is the recovery oracle.
        self.op_log = None
        #: Optional extra backoff behaviour, called with the wait's cycle
        #: count after it was accounted (a multi-core system installs a
        #: scheduler-yielding sink so the conflicting elder can finish).
        self.backoff_sink: Optional[Callable[[int], None]] = None

    # --- transactions --------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """Durable transaction scope.

        Raising :class:`TransactionAborted` inside the scope triggers a
        hardware abort (rollback); any other exception propagates after
        aborting, so the simulated state stays consistent.
        """
        self.machine.tx_begin()
        self._tx_allocs = []
        self._tx_frees = []
        self.last_aborted = False
        try:
            yield
        except TransactionAborted:
            if self.machine.aborted_by_conflict:
                # A peer already rolled the hardware state back
                # (multi-core conflict resolution); only the software
                # side remains to clean up.
                self.machine.aborted_by_conflict = False
            else:
                self.machine.tx_abort()
            self._rollback_allocs()
            self.last_aborted = True
            if self.op_log is not None:
                self.op_log.aborted()
        except PowerFailure:
            # A crash is not an abort: volatile state simply vanishes.
            # Let the failure propagate to the crash harness untouched.
            raise
        except BaseException:
            self.machine.tx_abort()
            self._rollback_allocs()
            raise
        else:
            self.machine.tx_end()
            for addr in self._tx_frees:
                self.allocator.free(addr)
            if self.op_log is not None:
                self.op_log.committed()
        finally:
            self._tx_allocs = []
            self._tx_frees = []

    def _rollback_allocs(self) -> None:
        """Release the aborted transaction's allocations."""
        for addr in self._tx_allocs:
            if self.allocator.is_live(addr):
                self.allocator.free(addr)

    def abort(self) -> None:
        """Abort the enclosing transaction."""
        raise TransactionAborted("transaction aborted by workload")

    # --- bounded retry with deterministic backoff ---------------------------

    def backoff(self, wait_index: int, base: int) -> int:
        """Perform the *wait_index*-th backoff wait (1-based).

        The wait is pure simulated time — ``base << min(index - 1,
        BACKOFF_SHIFT_CAP)`` cycles added to the machine clock and
        accounted in the stats — so replays are bit-identical.  Returns
        the cycles waited.
        """
        cycles = base << min(wait_index - 1, BACKOFF_SHIFT_CAP)
        self.machine.now += cycles
        self.machine.stats.backoff_waits += 1
        self.machine.stats.backoff_cycles += cycles
        if self.machine.profiler is not None:
            self.machine.profiler.reattribute(
                "backoff", cycles, self.machine.now
            )
        if self.backoff_sink is not None:
            self.backoff_sink(cycles)
        return cycles

    def run_with_retries(
        self,
        body: Callable[[], None],
        *,
        retries: int = 8,
        backoff_base: int = 64,
    ) -> int:
        """Run *body* in a transaction, retrying recoverable aborts.

        The budget is ``retries`` re-attempts after the first try; every
        retry is preceded by exactly one deterministic, cycle-accounted
        backoff wait (so a budget of N that never succeeds performs
        exactly N waits).  Returns the number of aborted attempts before
        the commit; raises :class:`RetryExhausted` once the budget is
        spent.  Crashes (:class:`PowerFailure`) are not retried — they
        propagate to the crash harness like everywhere else.
        """
        for attempt in range(retries + 1):
            if attempt:
                self.machine.stats.tx_retries += 1
                self.backoff(attempt, backoff_base)
            with self.transaction():
                body()
            if not self.last_aborted:
                return attempt
        raise RetryExhausted(
            f"transaction aborted {retries + 1} times "
            f"(budget of {retries} retries / backoff waits exhausted)"
        )

    # --- memory access -----------------------------------------------------------

    def load(self, addr: int) -> int:
        return self.machine.exec_load(addr)

    def store(self, addr: int, value: int, hint: Hint = Hint.NONE) -> None:
        lazy, log_free = self.policy.flags(hint)
        if lazy or log_free:
            self.machine.exec_storeT(addr, value, lazy, log_free)
        else:
            self.machine.exec_store(addr, value)

    def write_words(
        self, addr: int, values: Sequence[int], hint: Hint = Hint.NONE
    ) -> None:
        """Store a contiguous run of words (e.g. a value payload).

        The whole run shares one hint, so the machine can execute it as
        a batch (:meth:`~repro.core.machine.Machine.exec_store_run`) —
        bit-identical to the word-by-word loop.
        """
        lazy, log_free = self.policy.flags(hint)
        self.machine.exec_store_run(addr, values, lazy, log_free)

    def read_words(self, addr: int, count: int) -> List[int]:
        return self.machine.exec_load_run(addr, count)

    # --- struct helpers -------------------------------------------------------------

    def read_field(self, struct: StructLayout, base: int, field: str) -> int:
        return self.load(struct.addr(base, field))

    def write_field(
        self,
        struct: StructLayout,
        base: int,
        field: str,
        value: int,
        hint: Hint = Hint.NONE,
    ) -> None:
        self.store(struct.addr(base, field), value, hint)

    # --- allocation ------------------------------------------------------------------

    def alloc(self, size: int, *, align: "int | None" = None) -> int:
        """Allocate persistent memory; tracked for NEW_ALLOC hinting."""
        addr = self.allocator.alloc(size, align=align)
        if self.machine.in_transaction:
            self._tx_allocs.append(addr)
        return addr

    def alloc_struct(self, struct: StructLayout, *, align: "int | None" = None) -> int:
        return self.alloc(struct.size, align=align)

    def free(self, addr: int) -> None:
        """Free persistent memory (deferred to commit inside a txn)."""
        if self.machine.in_transaction:
            self._tx_frees.append(addr)
        else:
            self.allocator.free(addr)

    def allocated_this_tx(self, addr: int) -> bool:
        """True when *addr* is inside a region allocated by this txn."""
        for base in self._tx_allocs:
            allocation = self.allocator._live.get(base)  # noqa: SLF001
            if allocation and allocation.addr <= addr < allocation.end:
                return True
        return False

    # --- utilities --------------------------------------------------------------------

    def durable_read(self, addr: int) -> int:
        """What PM holds for *addr* (the value a crash would preserve)."""
        return self.machine.durable_read(addr)

    def run_empty_transactions(self, count: int) -> None:
        """The paper's idiom for forcing lazily persistent data durable:
        cycling the transaction-ID pool persists everything deferred."""
        for _ in range(count):
            self.machine.tx_begin()
            self.machine.tx_end()
