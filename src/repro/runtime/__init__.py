"""Programmer-facing transactional runtime and annotation policies."""

from repro.runtime.hints import (
    COMPILER_DEFAULT,
    HINT_FLAGS,
    MANUAL,
    NO_ANNOTATIONS,
    AnnotationPolicy,
    Hint,
)
from repro.runtime.ptx import PTx

__all__ = [
    "PTx",
    "Hint",
    "HINT_FLAGS",
    "AnnotationPolicy",
    "NO_ANNOTATIONS",
    "MANUAL",
    "COMPILER_DEFAULT",
]
