"""Selective-logging hints and annotation policies (Section IV).

Workload code does not hard-code ``storeT`` flags.  Instead, every store
site carries a *semantic hint* describing why the store could be
log-free or lazily persistent, and an :class:`AnnotationPolicy` decides
which hints are honoured:

* the **manual** policy honours every hint (the programmer annotated the
  code by hand, as in the paper's kernel experiments);
* a **compiler** policy honours only the hint classes the compiler
  analyses of Section IV-B can discover (Pattern 1 finds
  :data:`Hint.NEW_ALLOC` and :data:`Hint.DEAD_REGION`; Pattern 2 finds
  :data:`Hint.RECOVERABLE` and :data:`Hint.MOVED_DATA` when the def-use
  chain proves recoverability — deeper semantic hints such as
  :data:`Hint.SEMANTIC` are missed);
* the **none** policy honours nothing, so every store is a plain logged,
  eagerly persisted ``store`` (what FG / ATOM / EDE see).

The hint-to-flag mapping follows Table I and Section IV:

=================  =====  ========  ==============================
Hint               lazy   log-free  rationale
=================  =====  ========  ==============================
NEW_ALLOC          0      1         re-allocation is reproducible;
                                    GC reclaims leaks (Pattern 1)
DEAD_REGION        1      1         data allocated AND freed in this
                                    txn; dead on every outcome
TOMBSTONE          1      0         poisoning freed *pre-existing*
                                    data: dead once committed, but a
                                    rollback resurrects it, so the
                                    pre-image must stay logged
RECOVERABLE        1      0         value rebuildable from other
                                    persistent data (Pattern 2)
MOVED_DATA         1      1         copy of unmodified source data;
                                    rebuildable and freshly allocated
REDUNDANT          1      1         algorithmically redundant (Fig. 1
                                    prev pointers): derivable from
                                    other durable structure
SEMANTIC           1      1         needs deep program semantics
                                    (colors, counters); manual only
=================  =====  ========  ==============================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Tuple


class Hint(enum.Enum):
    """Why a store site may use ``storeT``."""

    NONE = "none"
    NEW_ALLOC = "new_alloc"
    DEAD_REGION = "dead_region"
    #: Poisoning a region the transaction *frees* but that shares cache
    #: lines with (or simply: existed as) live data: needs no persistence
    #: once committed (the region is dead), but MUST stay logged — if the
    #: transaction rolls back, the un-free resurrects the region and the
    #: pre-image has to come back with it.  The Table-I "lazy but logged"
    #: combination exists for exactly this kind of site.
    TOMBSTONE = "tombstone"
    RECOVERABLE = "recoverable"
    MOVED_DATA = "moved_data"
    #: Algorithmically redundant data (the paper's Figure-1 example: the
    #: ``prev`` pointers of a doubly-linked list are fully derivable from
    #: the ``next`` chain): neither logging nor eager persistence needed.
    REDUNDANT = "redundant"
    SEMANTIC = "semantic"

    # Members are singletons, so identity hashing is equivalent to the
    # default Enum hash — and C-speed on the per-store flag lookup.
    __hash__ = object.__hash__


#: ``hint -> (lazy, log_free)`` flag mapping for honoured hints.
HINT_FLAGS = {
    Hint.NEW_ALLOC: (False, True),
    Hint.DEAD_REGION: (True, True),
    Hint.TOMBSTONE: (True, False),
    Hint.RECOVERABLE: (True, False),
    Hint.MOVED_DATA: (True, True),
    Hint.REDUNDANT: (True, True),
    Hint.SEMANTIC: (True, True),
}


_PLAIN = (False, False)


@dataclass(frozen=True)
class AnnotationPolicy:
    """Which hints become real ``storeT`` annotations."""

    name: str
    honored: FrozenSet[Hint] = frozenset()

    def __post_init__(self) -> None:
        # Per-store lookups resolve through one precomputed dict instead
        # of two set/dict membership tests (not a field: equality and
        # hashing stay derived from name/honored alone).
        flag_map = {
            hint: HINT_FLAGS[hint] for hint in self.honored if hint in HINT_FLAGS
        }
        object.__setattr__(self, "_flag_map", flag_map)

    def flags(self, hint: Hint) -> "Tuple[bool, bool]":
        """Return ``(lazy, log_free)`` for a store with *hint*."""
        return self._flag_map.get(hint, _PLAIN)

    def is_plain(self, hint: Hint) -> bool:
        return self.flags(hint) == _PLAIN


#: No annotations: every store is logged and eagerly persisted.
NO_ANNOTATIONS = AnnotationPolicy(name="none")

#: The programmer annotated everything (paper's manual kernels).
MANUAL = AnnotationPolicy(
    name="manual",
    honored=frozenset(
        {
            Hint.NEW_ALLOC,
            Hint.DEAD_REGION,
            Hint.TOMBSTONE,
            Hint.RECOVERABLE,
            Hint.MOVED_DATA,
            Hint.REDUNDANT,
            Hint.SEMANTIC,
        }
    ),
)

#: What the Section IV-B compiler passes can prove without deep semantics.
COMPILER_DEFAULT = AnnotationPolicy(
    name="compiler",
    honored=frozenset(
        {Hint.NEW_ALLOC, Hint.DEAD_REGION, Hint.RECOVERABLE, Hint.MOVED_DATA}
    ),
)
